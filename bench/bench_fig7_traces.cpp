// Reproduces paper Figure 7: execution traces of a homogeneous 4-node
// system answering one question, with RECV partitioning for PR/PS and each
// of SEND / ISEND / RECV for AP.
//
// Shape to reproduce: (a) under SEND, equal paragraph counts finish at very
// different times; (b) ISEND legs finish close together; (c) RECV legs
// finish closest. PR collection times vary widely (paper: 0.19s-1.52s),
// which is why the nodes *compete* for collections instead of being
// assigned weighted shares.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using parallel::Strategy;
  const auto& world = bench::bench_world();

  const char* results_env = std::getenv("QADIST_RESULTS_DIR");
  const std::string results_dir =
      (results_env != nullptr && *results_env != '\0') ? results_env
                                                       : "results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  bench::BenchReport report("fig7_traces");
  report.config("nodes", std::int64_t{4});

  // The paper traces question 226; we pick the plan with the most accepted
  // paragraphs so the AP partitioning behaviour is clearly visible.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < world.plans.size(); ++i) {
    if (world.plans[i].ap_units.size() > world.plans[pick].ap_units.size()) {
      pick = i;
    }
  }

  const char* labels[] = {"(a) RECV for PR/PS, SEND for AP",
                          "(b) RECV for PR/PS, ISEND for AP",
                          "(c) RECV for PR/PS, RECV for AP"};
  const Strategy strategies[] = {Strategy::kSend, Strategy::kIsend,
                                 Strategy::kRecv};
  for (int variant = 0; variant < 3; ++variant) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg;
    cfg.nodes = 4;
    cfg.partition.ap_strategy = strategies[variant];
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cluster::System system(sim, cfg);
    cluster::TraceRecorder trace;
    obs::Tracer tracer;
    system.set_trace(&trace);
    system.set_tracer(&tracer);
    system.submit(world.plans[pick], 0.0);
    const auto metrics = system.run();

    std::printf("Figure 7 %s — question '%s'\n%s", labels[variant],
                world.plans[pick].source.text.c_str(),
                trace.render().c_str());
    std::printf("  response time: %.2f s\n\n", metrics.latencies.mean());

    // Machine-readable twins of this text trace: the same event stream as
    // a JSONL log and a Perfetto-loadable Chrome trace.
    const std::string strat{parallel::to_string(strategies[variant])};
    const std::string stem = results_dir + "/TRACE_fig7_ap_" + strat;
    obs::export_jsonl_file(tracer, stem + ".jsonl");
    obs::export_chrome_trace_file(tracer, stem + ".chrome.json");
    report.metric("response_seconds", {{"ap_strategy", strat}},
                  metrics.latencies.mean());
    report.metric("spans", {{"ap_strategy", strat}},
                  static_cast<double>(tracer.spans().size()));
  }
  report.write();
  return 0;
}
