// Adversarial regression corpus replay: loads every pinned survivor
// scenario committed under results/scenarios/ (override the directory
// with QADIST_SCENARIOS_DIR), replays each twice, and fails the build —
// via exit code — when anything drifted:
//
//   * the two replays are not bit-identical (determinism broke),
//   * any global invariant is violated (drain accounting, telescoping,
//     zombie spans, counter consistency),
//   * the measured p99 or degraded share leaves the pinned envelope:
//     worse than pin * (1 + slack) is a tail regression; a p99 below
//     half the pinned value means the pathology silently vanished and
//     the corpus must be re-hunted (tools/fuzz_hunter) and re-pinned.
//
// The corpus is committed, so fewer than 3 loadable scenarios is itself
// a failure — the regression net is gone.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

std::string scenario_dir() {
  if (const char* env = std::getenv("QADIST_SCENARIOS_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  // Default: results/scenarios relative to the working directory, with a
  // parent-directory fallback so running from build/ also finds the
  // committed corpus.
  const std::string local = "results/scenarios";
  if (std::filesystem::exists(local)) return local;
  const std::string parent = "../results/scenarios";
  if (std::filesystem::exists(parent)) return parent;
  return local;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qadist;
  const bench::BenchCli cli = bench::BenchCli::parse(argc, argv);
  (void)cli;  // corpus replay has no size knobs: the scenarios ARE the spec

  const std::string dir = scenario_dir();
  const std::vector<fuzz::LoadedScenario> corpus =
      fuzz::load_scenario_dir(dir);
  std::printf("adversarial corpus: %zu scenario(s) from %s\n", corpus.size(),
              dir.c_str());
  if (corpus.size() < 3) {
    std::fprintf(stderr,
                 "FAIL: expected the committed corpus (>= 3 scenarios) under "
                 "%s — found %zu\n",
                 dir.c_str(), corpus.size());
    return 1;
  }

  const bench::BenchWorld& world = bench::bench_world();

  bench::BenchReport report("adversarial");
  report.config("scenarios", static_cast<std::int64_t>(corpus.size()));
  report.config("dir", dir);

  int failures = 0;
  const auto fail = [&failures](const std::string& scenario,
                                const std::string& why) {
    std::fprintf(stderr, "FAIL %s: %s\n", scenario.c_str(), why.c_str());
    ++failures;
  };

  std::printf("%-18s %12s %12s %10s %10s  %s\n", "scenario", "p99(s)",
              "pin-p99(s)", "degraded", "pin-degr", "verdict");
  for (const fuzz::LoadedScenario& loaded : corpus) {
    const fuzz::Scenario& s = loaded.scenario;
    if (const auto issue = s.problem(world.plans.size())) {
      fail(s.name, "scenario no longer valid: " + *issue);
      continue;
    }
    if (!s.pin.present) {
      fail(s.name, "committed scenario has no pin (re-run fuzz_hunter)");
      continue;
    }

    // First replay: invariants + serialize -> parse -> re-run bit-identity.
    fuzz::RunOptions options;
    options.check_invariants = true;
    options.check_replay = true;
    const fuzz::Observation first = fuzz::run_scenario(world.plans, s, options);
    for (const std::string& violation : first.violations) {
      fail(s.name, violation);
    }
    // Second full replay from the parsed file content: the digest must
    // match the first run exactly (the corpus's bit-identical-replay
    // guarantee, end to end through the on-disk JSON).
    options.check_invariants = false;
    options.check_replay = false;
    const fuzz::Observation second =
        fuzz::run_scenario(world.plans, s, options);
    if (!(first.digest == second.digest)) {
      fail(s.name, "re-replay diverged:\n  first:  " +
                       fuzz::to_string(first.digest) +
                       "\n  second: " + fuzz::to_string(second.digest));
    }

    // Pinned envelope. The ceiling is the regression gate; the floor
    // catches a silently-vanished pathology (then the pin is stale and the
    // corpus needs re-hunting).
    const fuzz::Pin& pin = s.pin;
    const double p99_ceiling = pin.p99_seconds * (1.0 + pin.slack);
    const double p99_floor = pin.p99_seconds * 0.5;
    const double degraded_ceiling =
        pin.degraded_fraction * (1.0 + pin.slack) + 0.05;
    bool ok = true;
    if (first.p99 > p99_ceiling) {
      fail(s.name, "p99 " + fuzz::format_double(first.p99) +
                       "s exceeds pinned envelope " +
                       fuzz::format_double(p99_ceiling) + "s");
      ok = false;
    }
    if (first.p99 < p99_floor) {
      fail(s.name, "p99 " + fuzz::format_double(first.p99) +
                       "s fell below half the pinned " +
                       fuzz::format_double(pin.p99_seconds) +
                       "s — pathology vanished, re-pin the corpus");
      ok = false;
    }
    if (first.degraded_fraction > degraded_ceiling) {
      fail(s.name, "degraded share " +
                       fuzz::format_double(first.degraded_fraction) +
                       " exceeds pinned envelope " +
                       fuzz::format_double(degraded_ceiling));
      ok = false;
    }

    std::printf("%-18s %12.3f %12.3f %10.4f %10.4f  %s\n", s.name.c_str(),
                first.p99, pin.p99_seconds, first.degraded_fraction,
                pin.degraded_fraction, ok ? "ok" : "FAIL");

    const obs::Labels labels = {{"scenario", s.name}};
    report.metric("p99_latency_seconds", labels, first.p99);
    report.metric("degraded_share", labels, first.degraded_fraction);
    report.metric("shed_share", labels, first.shed_fraction);
  }

  report.metric("scenarios_replayed", {},
                static_cast<double>(corpus.size()));
  report.write();

  if (failures > 0) {
    std::fprintf(stderr, "\nbench_adversarial: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall %zu scenarios replayed bit-identically inside their "
              "pinned envelopes.\n",
              corpus.size());
  return 0;
}
