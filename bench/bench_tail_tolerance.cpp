// Tail tolerance under gray failure: how much p99 does one degraded node
// cost, and how much of it do hedged requests, tied-request cancellation,
// and latency-aware replica selection buy back? Not a paper exhibit — the
// paper's failure handling (Sec. 5) is crash detection via heartbeats; a
// gray-slow node keeps its heartbeats flowing, so the detector never sees
// it and only latency-signal mitigation helps.
//
// Grid: {none, hedge, hedge+tied, full} mitigation x {healthy, one
// 10x-slow node (CPU+disk), 10x-slow disk on an R=2 shard holder} on a
// 12-node DQA cluster with a partially replicated corpus (8 shards, R=2)
// at moderate open load (0.6x aggregate service rate — tails come from
// the gray node, not from saturation).
//
// This harness enforces the PR's acceptance bar and exits non-zero if the
// toolkit stops earning its keep:
//   * unmitigated, the slow node pushes p99 past 6x the healthy baseline;
//   * hedging + tied + latency-aware holds p99 within 3x of healthy;
//   * hedge overhead (backup legs / primary legs) stays <= 15% at the
//     default p95 trigger.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"
#include "workload/driver.hpp"

namespace {

struct Mode {
  const char* name;
  bool hedge;
  bool tied;
  bool latency_aware;
};

struct Scenario {
  const char* name;
  bool slow_cpu;   // 10x CPU+disk gray window on the victim node
  bool slow_disk;  // 10x disk-only gray window on an R=2 shard holder
};

constexpr Mode kModes[] = {
    {"none", false, false, false},
    {"hedge", true, false, false},
    {"hedge+tied", true, true, false},
    {"full", true, true, true},
};

constexpr Scenario kScenarios[] = {
    {"healthy", false, false},
    {"slow-node", true, false},
    {"slow-disk", false, true},
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  const std::size_t nodes = cli.nodes_or(12);
  const std::size_t questions = (cli.smoke ? 3 : 4) * nodes;
  const double overload_factor = 0.6;

  const auto base_config = [&] {
    cluster::SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.dispatch.policy = cluster::Policy::kDqa;
    cfg.partition.ap_strategy = parallel::Strategy::kRecv;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cfg.shard.num_shards = 8;
    cfg.shard.replication = 2;
    return cfg;
  };

  // The slow-disk scenario degrades a node that actually holds a shard:
  // with R=2 a healthy replica exists, so latency-aware selection has
  // somewhere to steer. Placement is deterministic, so probe it once.
  sched::NodeId shard_holder = 0;
  {
    simnet::Simulation sim;
    cluster::System probe(sim, base_config());
    shard_holder = probe.shard_map()->ready_holders(0).front();
  }
  const sched::NodeId slow_node = (shard_holder + 1) % nodes;

  const auto run = [&](const Mode& mode, const Scenario& scenario) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg = base_config();
    cfg.tail.hedge = mode.hedge;
    cfg.tail.tied = mode.tied;
    cfg.tail.latency_aware = mode.latency_aware;
    if (scenario.slow_cpu) {
      simnet::GrayFaultEvent ev;
      ev.node = slow_node;
      ev.at = 0.0;  // degraded for the whole run: the worst case
      ev.cpu_factor = 10.0;
      ev.disk_factor = 10.0;
      cfg.gray.events.push_back(ev);
    }
    if (scenario.slow_disk) {
      simnet::GrayFaultEvent ev;
      ev.node = shard_holder;
      ev.at = 0.0;
      ev.disk_factor = 10.0;
      cfg.gray.events.push_back(ev);
    }
    cluster::System system(sim, cfg);
    workload::RunSpec spec;
    spec.shape = workload::WorkloadShape::kOverload;
    spec.overload.count = questions;
    spec.overload.overload_factor = overload_factor;
    spec.overload.seed = cli.seed_or(5);
    spec.overload.reference_disk = world.cost->anchors().reference_disk;
    return workload::Driver(system, world.plans).run(spec).metrics;
  };

  bench::BenchReport report("tail_tolerance");
  report.config("nodes", static_cast<std::int64_t>(nodes));
  report.config("questions", static_cast<std::int64_t>(questions));
  report.config("overload_factor", overload_factor);
  report.config("shards", std::int64_t{8});
  report.config("replication", std::int64_t{2});
  report.config("gray_factor", 10.0);
  report.config("protocol",
                "moderate load 0.6x; gray node degraded for the whole run; "
                "mitigation grid {none,hedge,hedge+tied,full}");

  std::printf(
      "12-node DQA, 8 shards R=2, %zu questions at %.1fx load; gray node N%u "
      "(CPU+disk 10x), gray disk on shard holder N%u (disk 10x)\n",
      questions, overload_factor, static_cast<unsigned>(slow_node),
      static_cast<unsigned>(shard_holder));

  TextTable table({"Scenario", "Mitigation", "p50 (s)", "p95 (s)", "p99 (s)",
                   "Max (s)", "Hedges", "Wins", "Cancelled", "Overhead"});
  // p99 of the full-mitigation run in each scenario, and the bar inputs.
  double healthy_p99 = 0.0;
  double none_slow_p99 = 0.0;
  double full_slow_p99 = 0.0;
  double full_slow_overhead = 0.0;
  bool all_complete = true;

  for (const Scenario& scenario : kScenarios) {
    for (const Mode& mode : kModes) {
      const cluster::Metrics m = run(mode, scenario);
      if (m.completed != m.submitted) all_complete = false;
      const double p99 = m.latencies.quantile(0.99);
      table.add_row({mode.hedge ? "" : scenario.name, mode.name,
                     cell(m.latencies.quantile(0.5), 1),
                     cell(m.latencies.quantile(0.95), 1), cell(p99, 1),
                     cell(m.latencies.max(), 1), std::to_string(m.hedges_issued),
                     std::to_string(m.hedge_wins),
                     std::to_string(m.legs_cancelled),
                     cell(100.0 * m.hedge_overhead(), 1) + "%"});
      const obs::Labels labels{{"scenario", scenario.name},
                               {"mitigation", mode.name}};
      report.metric("latency_seconds", labels, m.latencies);
      report.metric("latency_p99_seconds", labels, p99);
      report.metric("hedges_issued", labels,
                    static_cast<double>(m.hedges_issued));
      report.metric("hedge_wins", labels, static_cast<double>(m.hedge_wins));
      report.metric("legs_cancelled", labels,
                    static_cast<double>(m.legs_cancelled));
      report.metric("hedge_overhead", labels, m.hedge_overhead());
      report.metric("straggler_avoidances", labels,
                    static_cast<double>(m.straggler_avoidances));
      if (scenario.slow_cpu && std::string(mode.name) == "none") {
        none_slow_p99 = p99;
      }
      if (scenario.slow_cpu && std::string(mode.name) == "full") {
        full_slow_p99 = p99;
        full_slow_overhead = m.hedge_overhead();
      }
      if (!scenario.slow_cpu && !scenario.slow_disk &&
          std::string(mode.name) == "none") {
        healthy_p99 = p99;
      }
    }
  }
  std::printf("%s", table.render().c_str());

  const double unmitigated_ratio = none_slow_p99 / healthy_p99;
  const double mitigated_ratio = full_slow_p99 / healthy_p99;
  std::printf(
      "Slow-node p99 vs healthy baseline: unmitigated %.2fx, full toolkit "
      "%.2fx (hedge overhead %.1f%%)\n",
      unmitigated_ratio, mitigated_ratio, 100.0 * full_slow_overhead);
  report.metric("p99_ratio_unmitigated", {}, unmitigated_ratio);
  report.metric("p99_ratio_mitigated", {}, mitigated_ratio);

  // --- Acceptance bar (the PR's contract; CI runs this in smoke mode) ---
  int failures = 0;
  if (!all_complete) {
    std::printf("ERROR: some run lost questions (completed != submitted)\n");
    ++failures;
  }
  if (!(unmitigated_ratio > 6.0)) {
    std::printf(
        "ERROR: unmitigated slow-node p99 only %.2fx healthy (bar: > 6x) — "
        "the gray fault is not painful enough to motivate the toolkit\n",
        unmitigated_ratio);
    ++failures;
  }
  if (!(mitigated_ratio <= 3.0)) {
    std::printf(
        "ERROR: full-toolkit slow-node p99 is %.2fx healthy (bar: <= 3x) — "
        "hedging + tied + latency-aware stopped containing the tail\n",
        mitigated_ratio);
    ++failures;
  }
  if (!(full_slow_overhead <= 0.15)) {
    std::printf(
        "ERROR: hedge overhead %.1f%% (bar: <= 15%% at the default p95 "
        "trigger) — backups are no longer a tail-only expense\n",
        100.0 * full_slow_overhead);
    ++failures;
  }
  std::printf(
      "Expected shape: every cell completes all questions; unmitigated, one "
      "10x gray node drags p99 past 6x the healthy baseline; the full "
      "toolkit (hedge+tied+latency-aware) pulls it back within 3x while "
      "spending <= 15%% extra legs; the disk-only fault is milder and "
      "latency-aware selection steers to the healthy R=2 replica.\n");
  report.write();
  return failures == 0 ? 0 : 1;
}
