// The paper's 50/250-byte answer presentation (Table 1): answers trim to
// the configured byte budget with the candidate kept inside.

#include <gtest/gtest.h>

#include "qa/answer_processing.hpp"
#include "qa/question_processing.hpp"

namespace qadist::qa {
namespace {

using corpus::EntityType;

class AnswerWindowTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  AnswerWindowTest() : qp_(analyzer_), ner_(gazetteer_, analyzer_) {
    gazetteer_.add("Port Varen", EntityType::kLocation);
    gazetteer_.add("the Amsen Lighthouse", EntityType::kLocation);
  }

  ScoredParagraph long_paragraph() const {
    std::string filler;
    for (int i = 0; i < 40; ++i) filler += "wordy filler text segment ";
    return ScoredParagraph{
        RetrievedParagraph{
            corpus::ParagraphRef{0, 0},
            filler + "the Amsen Lighthouse is located in Port Varen . " +
                filler,
            0},
        0.8};
  }

  corpus::Gazetteer gazetteer_;
  ir::Analyzer analyzer_;
  QuestionProcessor qp_;
  EntityRecognizer ner_;
};

TEST_P(AnswerWindowTest, WindowRespectsByteBudget) {
  AnswerProcessor::Config cfg;
  cfg.answer_window_bytes = GetParam();
  AnswerProcessor ap(ner_, analyzer_, cfg);
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto answers = ap.process_paragraph(q, long_paragraph());
  ASSERT_FALSE(answers.empty());
  for (const auto& a : answers) {
    EXPECT_LE(a.window.size(), GetParam())
        << "window '" << a.window << "'";
    EXPECT_NE(a.window.find(a.candidate), std::string::npos)
        << "candidate trimmed out of its own window";
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AnswerWindowTest,
                         ::testing::Values(50u, 100u, 250u),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

TEST(AnswerWindowDefaultTest, ShortWindowsUntouched) {
  corpus::Gazetteer gazetteer;
  gazetteer.add("Port Varen", EntityType::kLocation);
  gazetteer.add("the Amsen Lighthouse", EntityType::kLocation);
  ir::Analyzer analyzer;
  QuestionProcessor qp(analyzer);
  EntityRecognizer ner(gazetteer, analyzer);
  AnswerProcessor ap(ner, analyzer);
  const auto q = qp.process(0, "Where is the Amsen Lighthouse ?");
  const ScoredParagraph p{
      RetrievedParagraph{corpus::ParagraphRef{0, 0},
                         "the Amsen Lighthouse is located in Port Varen .",
                         0},
      0.8};
  const auto answers = ap.process_paragraph(q, p);
  ASSERT_FALSE(answers.empty());
  // The window is shorter than the 250-byte default: intact.
  EXPECT_NE(answers[0].window.find("located in Port Varen"),
            std::string::npos);
}

}  // namespace
}  // namespace qadist::qa
