// Pipeline properties swept per relation type: every question family the
// corpus generator can mint must flow through QP type classification,
// retrieval, and answer extraction successfully.

#include <gtest/gtest.h>

#include <set>

#include "corpus/fact.hpp"
#include "qa/evaluation.hpp"
#include "support/test_world.hpp"

namespace qadist::qa {
namespace {

using testing::test_world;

class RelationSweep : public ::testing::TestWithParam<int> {};

TEST_P(RelationSweep, QpClassifiesItsTemplateCorrectly) {
  const auto relation = static_cast<corpus::Relation>(GetParam());
  corpus::Fact fact;
  fact.subject = "Veldor Institute";
  fact.relation = relation;
  fact.object = "placeholder";
  const auto text = corpus::render_question_text(fact);

  const auto& engine = *test_world().engine;
  const auto pq = engine.process_question(0, text);
  EXPECT_EQ(pq.answer_type, corpus::answer_type_of(relation))
      << "question: " << text;
  EXPECT_FALSE(pq.keywords.empty());
}

TEST_P(RelationSweep, GoldAnswerFoundForAtLeastHalfTheFamily) {
  const auto relation = static_cast<corpus::Relation>(GetParam());
  const auto& world = test_world();
  std::vector<corpus::Question> family;
  for (const auto& q : world.questions) {
    if (q.gold_type == corpus::answer_type_of(relation)) {
      family.push_back(q);
    }
  }
  if (family.size() < 2) {
    GTEST_SKIP() << "too few questions of this family in the test world";
  }
  const auto result = evaluate(*world.engine, family);
  EXPECT_GE(result.accuracy_at_k(), 0.5)
      << corpus::to_string(relation) << " family of " << family.size();
}

INSTANTIATE_TEST_SUITE_P(
    Relations, RelationSweep,
    ::testing::Range(0, corpus::kRelationCount), [](const auto& info) {
      return std::string(
          corpus::to_string(static_cast<corpus::Relation>(info.param)));
    });

TEST(PipelinePropertyTest, EveryAnswerWindowContainsItsCandidate) {
  const auto& world = test_world();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto result = world.engine->answer(world.questions[i]);
    for (const auto& a : result.answers) {
      EXPECT_NE(a.window.find(a.candidate), std::string::npos)
          << "candidate '" << a.candidate << "' missing from window '"
          << a.window << "'";
    }
  }
}

TEST(PipelinePropertyTest, ScoresAreSortedAndBounded) {
  const auto& world = test_world();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto result = world.engine->answer(world.questions[i]);
    for (std::size_t k = 0; k < result.answers.size(); ++k) {
      EXPECT_GE(result.answers[k].score, 0.0);
      EXPECT_LE(result.answers[k].score, 1.0 + 1e-9);
      if (k > 0) {
        EXPECT_LE(result.answers[k].score, result.answers[k - 1].score);
      }
    }
  }
}

TEST(PipelinePropertyTest, CandidatesAreUniquePerQuestion) {
  const auto& world = test_world();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto result = world.engine->answer(world.questions[i]);
    std::set<std::string> seen;
    for (const auto& a : result.answers) {
      EXPECT_TRUE(seen.insert(a.candidate).second)
          << "duplicate candidate " << a.candidate;
    }
  }
}

TEST(PipelinePropertyTest, AcceptedParagraphsNeverExceedRetrieved) {
  const auto& world = test_world();
  for (const auto& q : world.questions) {
    const auto result = world.engine->answer(q);
    EXPECT_LE(result.work.paragraphs_accepted,
              result.work.paragraphs_retrieved);
  }
}

}  // namespace
}  // namespace qadist::qa
