#include "qa/question_processing.hpp"

#include <gtest/gtest.h>

namespace qadist::qa {
namespace {

using corpus::EntityType;

class QpTest : public ::testing::Test {
 protected:
  ir::Analyzer analyzer_;
  QuestionProcessor qp_{analyzer_};
};

TEST_F(QpTest, ClassifiesInterrogatives) {
  EXPECT_EQ(qp_.classify("Where is the Taj Mahal ?"), EntityType::kLocation);
  EXPECT_EQ(qp_.classify("Who founded Amsen Steel Works ?"),
            EntityType::kPerson);
  EXPECT_EQ(qp_.classify("When was the bridge built ?"), EntityType::kDate);
  EXPECT_EQ(qp_.classify("What is the population of Port Amsen ?"),
            EntityType::kQuantity);
  EXPECT_EQ(qp_.classify("What is the nationality of Pope John Paul II ?"),
            EntityType::kNationality);
  EXPECT_EQ(qp_.classify("How much did the monument cost ?"),
            EntityType::kMoney);
  EXPECT_EQ(qp_.classify("What does Veltorine treat ?"), EntityType::kDisease);
}

TEST_F(QpTest, UnknownForNonQuestions) {
  EXPECT_EQ(qp_.classify("Tell me about lighthouses"), EntityType::kUnknown);
}

TEST_F(QpTest, KeywordsDropStopwordsKeepOrder) {
  const auto pq = qp_.process(1, "Where is the Amsen Lighthouse ?");
  EXPECT_EQ(pq.answer_type, EntityType::kLocation);
  ASSERT_EQ(pq.keywords.size(), 2u);
  EXPECT_EQ(pq.keywords[0], "amsen");
  EXPECT_EQ(pq.keywords[1], "lighthouse");
}

TEST_F(QpTest, KeywordsDeduplicated) {
  const auto pq = qp_.process(2, "Who is the leader of Leader Leader Group ?");
  // "leader" appears three times but is kept once.
  std::size_t leaders = 0;
  for (const auto& k : pq.keywords) {
    if (k == "leader") ++leaders;
  }
  EXPECT_EQ(leaders, 1u);
}

TEST_F(QpTest, PreservesIdAndText) {
  const auto pq = qp_.process(42, "Where is X ?");
  EXPECT_EQ(pq.id, 42u);
  EXPECT_EQ(pq.text, "Where is X ?");
}

TEST_F(QpTest, StemsKeywords) {
  const auto pq = qp_.process(3, "Who founded the Amsen Observatory ?");
  EXPECT_NE(std::find(pq.keywords.begin(), pq.keywords.end(), "found"),
            pq.keywords.end());
}

}  // namespace
}  // namespace qadist::qa
