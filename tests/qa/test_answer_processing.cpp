#include "qa/answer_processing.hpp"

#include <gtest/gtest.h>

#include "qa/question_processing.hpp"

namespace qadist::qa {
namespace {

using corpus::EntityType;

class ApTest : public ::testing::Test {
 protected:
  ApTest() : qp_(analyzer_), ner_(gazetteer_, analyzer_), ap_(ner_, analyzer_) {
    gazetteer_.add("Port Varen", EntityType::kLocation);
    gazetteer_.add("Lake Tarnin", EntityType::kLocation);
    gazetteer_.add("Doran Veltis", EntityType::kPerson);
    gazetteer_.add("the Amsen Lighthouse", EntityType::kLocation);
    gazetteer_.add("Amsen Steel Works", EntityType::kOrganization);
  }

  ScoredParagraph make_paragraph(std::string text, double score = 0.8,
                                 corpus::DocId doc = 0,
                                 std::uint32_t idx = 0) {
    return ScoredParagraph{
        RetrievedParagraph{corpus::ParagraphRef{doc, idx}, std::move(text), 0},
        score};
  }

  corpus::Gazetteer gazetteer_;
  ir::Analyzer analyzer_;
  QuestionProcessor qp_;
  EntityRecognizer ner_;
  AnswerProcessor ap_;
};

TEST_F(ApTest, ExtractsTypedCandidate) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto answers = ap_.process_paragraph(
      q, make_paragraph("the Amsen Lighthouse is located in Port Varen ."));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].candidate, "Port Varen");
  EXPECT_EQ(answers[0].type, EntityType::kLocation);
  EXPECT_GT(answers[0].score, 0.0);
  EXPECT_NE(answers[0].window.find("Port Varen"), std::string::npos);
}

TEST_F(ApTest, SubjectIsNeverItsOwnAnswer) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  // Only the subject entity appears — no valid candidate remains.
  const auto answers = ap_.process_paragraph(
      q, make_paragraph("the Amsen Lighthouse shines at night ."));
  EXPECT_TRUE(answers.empty());
}

TEST_F(ApTest, WrongTypeCandidatesFiltered) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto answers = ap_.process_paragraph(
      q, make_paragraph(
             "Doran Veltis painted the Amsen Lighthouse in March 3 , 1901 ."));
  // PERSON and DATE candidates must be dropped for a LOCATION question.
  EXPECT_TRUE(answers.empty());
}

TEST_F(ApTest, UnknownTypeAcceptsAnyEntity) {
  const auto q = qp_.process(0, "Tell me about the Amsen Lighthouse");
  ASSERT_EQ(q.answer_type, EntityType::kUnknown);
  const auto answers = ap_.process_paragraph(
      q, make_paragraph("Doran Veltis painted the Amsen Lighthouse ."));
  ASSERT_FALSE(answers.empty());
}

TEST_F(ApTest, CloserCandidateScoresHigher) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto near = ap_.process_paragraph(
      q, make_paragraph("the Amsen Lighthouse is located in Port Varen ."));
  const auto far = ap_.process_paragraph(
      q, make_paragraph("the Amsen Lighthouse was commissioned long ago by "
                        "the harbor council and painted white and red and "
                        "after many storms it still guides ships toward "
                        "Lake Tarnin ."));
  ASSERT_EQ(near.size(), 1u);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_GT(near[0].score, far[0].score);
}

TEST_F(ApTest, CandidateWithNoNearbyKeywordDropped) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  // Keywords never occur: candidate has no window.
  const auto answers =
      ap_.process_paragraph(q, make_paragraph("Port Varen is sunny ."));
  EXPECT_TRUE(answers.empty());
}

TEST_F(ApTest, ProcessBatchDeduplicatesAndLimits) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  std::vector<ScoredParagraph> batch;
  batch.push_back(make_paragraph(
      "the Amsen Lighthouse is located in Port Varen .", 0.9, 0, 0));
  batch.push_back(make_paragraph(
      "some say the Amsen Lighthouse is located in Port Varen indeed .", 0.8,
      1, 0));
  batch.push_back(make_paragraph(
      "the Amsen Lighthouse is near Lake Tarnin .", 0.7, 2, 0));
  AnswerWork work;
  const auto answers = ap_.process(q, batch, &work);
  // Two distinct candidates, Port Varen deduplicated across paragraphs.
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].candidate, "Port Varen");
  EXPECT_EQ(answers[1].candidate, "Lake Tarnin");
  EXPECT_EQ(work.paragraphs_processed, 3u);
  EXPECT_GT(work.candidates_considered, 0u);
}

TEST_F(ApTest, WorkCountersAccumulate) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  AnswerWork work;
  (void)ap_.process_paragraph(
      q, make_paragraph("the Amsen Lighthouse is located in Port Varen ."),
      &work);
  EXPECT_EQ(work.paragraphs_processed, 1u);
  EXPECT_GT(work.tokens_scanned, 5u);
  EXPECT_GE(work.windows_scored, 1u);
}

TEST(SortAnswersTest, SortsDescendingDeduplicates) {
  std::vector<Answer> answers;
  Answer a;
  a.candidate = "X";
  a.score = 0.5;
  answers.push_back(a);
  a.candidate = "Y";
  a.score = 0.9;
  answers.push_back(a);
  a.candidate = "X";
  a.score = 0.7;  // better window for X
  answers.push_back(a);

  const auto sorted = sort_answers(std::move(answers), 10);
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].candidate, "Y");
  EXPECT_EQ(sorted[1].candidate, "X");
  EXPECT_DOUBLE_EQ(sorted[1].score, 0.7);
}

TEST(SortAnswersTest, LimitTruncates) {
  std::vector<Answer> answers;
  for (int i = 0; i < 10; ++i) {
    Answer a;
    a.candidate = "c" + std::to_string(i);
    a.score = i * 0.1;
    answers.push_back(a);
  }
  EXPECT_EQ(sort_answers(std::move(answers), 3).size(), 3u);
}

TEST(SortAnswersTest, EmptyInput) {
  EXPECT_TRUE(sort_answers({}, 5).empty());
}

}  // namespace
}  // namespace qadist::qa
