#include "qa/ner.hpp"

#include <gtest/gtest.h>

namespace qadist::qa {
namespace {

using corpus::EntityType;

class NerTest : public ::testing::Test {
 protected:
  NerTest() {
    gazetteer_.add("Port Amsen", EntityType::kLocation);
    gazetteer_.add("Doran Veltis", EntityType::kPerson);
    gazetteer_.add("Amsen Steel Works", EntityType::kOrganization);
    gazetteer_.add("the Amsen Lighthouse", EntityType::kLocation);
    gazetteer_.add("Velinosis", EntityType::kDisease);
  }

  corpus::Gazetteer gazetteer_;
  ir::Analyzer analyzer_;
  EntityRecognizer ner_{gazetteer_, analyzer_};
};

TEST_F(NerTest, FindsGazetteerEntities) {
  const auto mentions =
      ner_.recognize_text("Doran Veltis sailed to Port Amsen yesterday .");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].type, EntityType::kPerson);
  EXPECT_EQ(mentions[0].text, "Doran Veltis");
  EXPECT_EQ(mentions[1].type, EntityType::kLocation);
  EXPECT_EQ(mentions[1].text, "Port Amsen");
}

TEST_F(NerTest, PrefersLongestMatch) {
  // "Amsen Steel Works" must win over any shorter prefix.
  const auto mentions = ner_.recognize_text("workers at Amsen Steel Works");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].type, EntityType::kOrganization);
  EXPECT_EQ(mentions[0].token_count, 3u);
}

TEST_F(NerTest, ArticleLedEntity) {
  const auto mentions =
      ner_.recognize_text("the Amsen Lighthouse is located in Port Amsen .");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].text, "the Amsen Lighthouse");
}

TEST_F(NerTest, DatePatterns) {
  const auto full = ner_.recognize_text("founded in March 14 , 1912 .");
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].type, EntityType::kDate);
  EXPECT_EQ(full[0].token_count, 3u);

  const auto year_only = ner_.recognize_text("built around 1885 by settlers");
  ASSERT_EQ(year_only.size(), 1u);
  EXPECT_EQ(year_only[0].type, EntityType::kDate);
  EXPECT_LT(year_only[0].confidence, 1.0);
}

TEST_F(NerTest, MoneyPattern) {
  const auto mentions = ner_.recognize_text("it cost $ 12 million overall");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].type, EntityType::kMoney);
  EXPECT_EQ(mentions[0].text, "$ 12 million");
}

TEST_F(NerTest, QuantityPattern) {
  const auto mentions = ner_.recognize_text("a population of 3400000 people");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].type, EntityType::kQuantity);
  EXPECT_EQ(mentions[0].text, "3400000");
}

TEST_F(NerTest, SmallNumbersIgnored) {
  const auto mentions = ner_.recognize_text("we saw 12 ships and 42 gulls");
  EXPECT_TRUE(mentions.empty());
}

TEST_F(NerTest, UncapitalizedWordsNotLookedUp) {
  // "velinosis" in lowercase prose: the gazetteer scan requires a
  // capitalized opener, so only the capitalized mention is found.
  const auto mentions =
      ner_.recognize_text("Velinosis spreads fast ; velinosis is rare");
  // Lowercase "velinosis" is skipped by the capitalization gate.
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].first_token, 0u);
}

TEST_F(NerTest, EmptyText) {
  EXPECT_TRUE(ner_.recognize_text("").empty());
}

TEST_F(NerTest, MentionsAreNonOverlapping) {
  const auto mentions = ner_.recognize_text(
      "Doran Veltis met Doran Veltis at Port Amsen near Port Amsen in March "
      "3 , 1920 with $ 5 million and 123456 coins");
  for (std::size_t i = 1; i < mentions.size(); ++i) {
    EXPECT_GE(mentions[i].first_token,
              mentions[i - 1].first_token + mentions[i - 1].token_count);
  }
  // 2x person, 2x location, date, money, quantity.
  EXPECT_EQ(mentions.size(), 7u);
}

}  // namespace
}  // namespace qadist::qa
