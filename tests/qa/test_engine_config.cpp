// Engine behaviour across configuration variants: sub-collection counts,
// skewed splits, ordering knobs — the pipeline must stay correct (gold
// answers found) under every deployment shape.

#include <gtest/gtest.h>

#include "qa/engine.hpp"
#include "qa/evaluation.hpp"
#include "support/test_world.hpp"

namespace qadist::qa {
namespace {

using testing::test_world;

class EngineConfigTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineConfigTest, AccuracyHoldsAcrossSubCollectionCounts) {
  const auto& world = test_world();
  EngineConfig cfg;
  cfg.subcollections = GetParam();
  const Engine engine(world.corpus, cfg);
  EXPECT_EQ(engine.subcollection_count(), GetParam());
  const auto result = evaluate(
      engine, std::span<const corpus::Question>(world.questions).subspan(0, 25));
  EXPECT_GE(result.accuracy_at_k(), 0.6)
      << "subcollections=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Splits, EngineConfigTest,
                         ::testing::Values(1u, 2u, 8u, 16u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(EngineConfigTest2, SkewedSplitPreservesAccuracy) {
  const auto& world = test_world();
  EngineConfig cfg;
  cfg.subcollection_size_ratio = 4.0;
  const Engine engine(world.corpus, cfg);
  const auto result = evaluate(
      engine, std::span<const corpus::Question>(world.questions).subspan(0, 25));
  EXPECT_GE(result.accuracy_at_k(), 0.6);
}

TEST(EngineConfigTest2, TighterOrderingAcceptsFewerParagraphs) {
  const auto& world = test_world();
  EngineConfig loose;
  loose.ordering.relative_threshold = 0.2;
  EngineConfig tight;
  tight.ordering.relative_threshold = 0.9;
  const Engine engine_loose(world.corpus, loose);
  const Engine engine_tight(world.corpus, tight);
  const auto& q = world.questions.front();
  EXPECT_LE(engine_tight.answer(q).work.paragraphs_accepted,
            engine_loose.answer(q).work.paragraphs_accepted);
}

TEST(EngineConfigTest2, MaxAcceptedCapsApWork) {
  const auto& world = test_world();
  EngineConfig cfg;
  cfg.ordering.max_accepted = 5;
  cfg.ordering.relative_threshold = 0.0;
  const Engine engine(world.corpus, cfg);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(engine.answer(world.questions[i]).work.paragraphs_accepted, 5u);
  }
}

TEST(EngineConfigTest2, AnswersRequestedLimitsOutput) {
  const auto& world = test_world();
  EngineConfig cfg;
  cfg.answers.answers_requested = 2;
  const Engine engine(world.corpus, cfg);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(engine.answer(world.questions[i]).answers.size(), 2u);
  }
}

TEST(EngineConfigTest2, MinParagraphsControlsRelaxation) {
  const auto& world = test_world();
  EngineConfig narrow;
  narrow.min_paragraphs_per_subcollection = 1;
  EngineConfig wide;
  wide.min_paragraphs_per_subcollection = 50;
  const Engine engine_narrow(world.corpus, narrow);
  const Engine engine_wide(world.corpus, wide);
  const auto& q = world.questions.front();
  EXPECT_LE(engine_narrow.answer(q).work.paragraphs_retrieved,
            engine_wide.answer(q).work.paragraphs_retrieved);
}

}  // namespace
}  // namespace qadist::qa
