#include "qa/text_match.hpp"

#include <gtest/gtest.h>

namespace qadist::qa {
namespace {

class TextMatchTest : public ::testing::Test {
 protected:
  ir::Analyzer analyzer_;
};

TEST_F(TextMatchTest, MapsStemmedKeywords) {
  const std::vector<std::string> keywords = {"found", "amsen"};
  const auto tokens = analyzer_.tokenize("he founded the Amsen works");
  const auto map = map_keywords(analyzer_, keywords, tokens);
  ASSERT_EQ(map.size(), 5u);
  EXPECT_EQ(map[0], -1);  // "he"
  EXPECT_EQ(map[1], 0);   // "founded" -> "found"
  EXPECT_EQ(map[2], -1);  // "the" (stopword)
  EXPECT_EQ(map[3], 1);   // "amsen"
  EXPECT_EQ(map[4], -1);  // "works" -> "work" not a keyword
}

TEST_F(TextMatchTest, NumericTokensMatchVerbatim) {
  const std::vector<std::string> keywords = {"340000"};
  const auto tokens = analyzer_.tokenize("population of 340000 people");
  const auto map = map_keywords(analyzer_, keywords, tokens);
  EXPECT_EQ(map[2], 0);
}

TEST_F(TextMatchTest, FirstMatchingKeywordWins) {
  // A token matching multiple keywords maps to the first (question order).
  const std::vector<std::string> keywords = {"amsen", "amsen"};
  const auto tokens = analyzer_.tokenize("amsen");
  EXPECT_EQ(map_keywords(analyzer_, keywords, tokens)[0], 0);
}

TEST_F(TextMatchTest, EmptyInputs) {
  EXPECT_TRUE(map_keywords(analyzer_, {}, {}).empty());
  const auto tokens = analyzer_.tokenize("some words");
  const auto map = map_keywords(analyzer_, {}, tokens);
  for (int m : map) EXPECT_EQ(m, -1);
}

TEST_F(TextMatchTest, SurfaceSpanRecapitalizes) {
  const auto tokens = analyzer_.tokenize("the Amsen Lighthouse is TALL");
  EXPECT_EQ(surface_span(tokens, 0, 3), "the Amsen Lighthouse");
  EXPECT_EQ(surface_span(tokens, 4, 1), "Tall");  // only first letter restored
}

TEST_F(TextMatchTest, SurfaceSpanClampsAtEnd) {
  const auto tokens = analyzer_.tokenize("one two");
  EXPECT_EQ(surface_span(tokens, 1, 10), "two");
  EXPECT_EQ(surface_span(tokens, 5, 2), "");
}

}  // namespace
}  // namespace qadist::qa
