#include "qa/evaluation.hpp"

#include <gtest/gtest.h>

#include "support/test_world.hpp"

namespace qadist::qa {
namespace {

using testing::test_world;

TEST(AnswerMatchesTest, NormalizesPunctuationAndCase) {
  ir::Analyzer analyzer;
  EXPECT_TRUE(answer_matches(analyzer, "March 14 1912", "March 14 , 1912"));
  EXPECT_TRUE(answer_matches(analyzer, "port varen", "Port Varen"));
  EXPECT_TRUE(answer_matches(analyzer, "$ 12 million", "$12 million"));
  EXPECT_FALSE(answer_matches(analyzer, "Port Varen", "Port Amsen"));
  EXPECT_FALSE(answer_matches(analyzer, "", "Port Amsen"));
}

TEST(EvaluationTest, ScoresTheTestWorldWell) {
  const auto& world = test_world();
  const auto result = evaluate(*world.engine, world.questions);
  EXPECT_EQ(result.questions, world.questions.size());
  EXPECT_GT(result.answered, 0u);
  // FALCON's TREC-9 bar: 66.4% correct short answers. Our closed world
  // should clear it comfortably for answers anywhere in the top-k list.
  EXPECT_GE(result.accuracy_at_k(), 0.664);
  EXPECT_GE(result.accuracy_at_1(), 0.5);
  // Invariants among the metrics.
  EXPECT_GE(result.correct_at_k, result.correct_at_1);
  EXPECT_LE(result.correct_at_k, result.answered);
  EXPECT_GE(result.mrr, result.accuracy_at_1());
  EXPECT_LE(result.mrr, result.accuracy_at_k() + 1e-12);
}

TEST(EvaluationTest, EmptyQuestionSet) {
  const auto& world = test_world();
  const auto result =
      evaluate(*world.engine, std::span<const corpus::Question>{});
  EXPECT_EQ(result.questions, 0u);
  EXPECT_EQ(result.accuracy_at_1(), 0.0);
  EXPECT_EQ(result.mrr, 0.0);
}

}  // namespace
}  // namespace qadist::qa
