#include "qa/paragraph_ordering.hpp"
#include "qa/paragraph_scoring.hpp"

#include <gtest/gtest.h>

#include "qa/question_processing.hpp"

namespace qadist::qa {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  ScoringTest() : qp_(analyzer_), scorer_(analyzer_) {}

  RetrievedParagraph make_paragraph(std::string text,
                                    corpus::DocId doc = 0,
                                    std::uint32_t idx = 0) {
    return RetrievedParagraph{corpus::ParagraphRef{doc, idx}, std::move(text),
                              0};
  }

  ir::Analyzer analyzer_;
  QuestionProcessor qp_;
  ParagraphScorer scorer_;
};

TEST_F(ScoringTest, AllKeywordsBeatSomeKeywords) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto full = scorer_.score(
      q, make_paragraph("the amsen lighthouse is located in port varen ."));
  const auto partial =
      scorer_.score(q, make_paragraph("the lighthouse is very old ."));
  EXPECT_GT(full.score, partial.score);
}

TEST_F(ScoringTest, AdjacentKeywordsBeatScattered) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto adjacent =
      scorer_.score(q, make_paragraph("the amsen lighthouse stands here ."));
  const auto scattered = scorer_.score(
      q, make_paragraph("amsen wool trade and later the harbor grew and a "
                        "lighthouse appeared ."));
  EXPECT_GT(adjacent.score, scattered.score);
}

TEST_F(ScoringTest, QuestionOrderBeatsReversedOrder) {
  const auto q = qp_.process(0, "Who founded Amsen Steel Works ?");
  // Keywords: found, amsen, steel, works (question order).
  const auto ordered = scorer_.score(
      q, make_paragraph("records say he founded amsen steel works with ease"));
  const auto reversed = scorer_.score(
      q, make_paragraph("records say works steel amsen founded with ease he"));
  EXPECT_GT(ordered.score, reversed.score);
}

TEST_F(ScoringTest, NoKeywordsScoresZero) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto none =
      scorer_.score(q, make_paragraph("unrelated words entirely here ."));
  EXPECT_DOUBLE_EQ(none.score, 0.0);
}

TEST_F(ScoringTest, ScoreIsBounded) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto best =
      scorer_.score(q, make_paragraph("amsen lighthouse"));
  EXPECT_LE(best.score, 1.0 + 1e-12);
  EXPECT_GE(best.score, 0.0);
}

TEST_F(ScoringTest, EmptyParagraph) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  const auto scored = scorer_.score(q, make_paragraph(""));
  EXPECT_DOUBLE_EQ(scored.score, 0.0);
}

TEST_F(ScoringTest, ScoreAllPreservesOrderAndCount) {
  const auto q = qp_.process(0, "Where is the Amsen Lighthouse ?");
  std::vector<RetrievedParagraph> batch;
  batch.push_back(make_paragraph("amsen lighthouse", 0, 0));
  batch.push_back(make_paragraph("nothing", 0, 1));
  const auto scored = scorer_.score_all(q, std::move(batch));
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].paragraph.ref, (corpus::ParagraphRef{0, 0}));
  EXPECT_EQ(scored[1].paragraph.ref, (corpus::ParagraphRef{0, 1}));
}

// ---------------------------------------------------------------- ordering

ScoredParagraph sp(double score, corpus::DocId doc, std::uint32_t idx) {
  return ScoredParagraph{
      RetrievedParagraph{corpus::ParagraphRef{doc, idx}, "", 0}, score};
}

TEST(OrderingTest, SortsDescending) {
  ParagraphOrderer::Config cfg;
  cfg.relative_threshold = 0.0;  // keep everything; this test is about order
  ParagraphOrderer po(cfg);
  auto out = po.order_and_filter({sp(0.2, 0, 0), sp(0.9, 1, 0), sp(0.6, 2, 0)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].score, 0.9);
  EXPECT_DOUBLE_EQ(out[1].score, 0.6);
  EXPECT_DOUBLE_EQ(out[2].score, 0.2);
}

TEST(OrderingTest, ThresholdFilters) {
  ParagraphOrderer::Config cfg;
  cfg.relative_threshold = 0.5;
  cfg.max_accepted = 100;
  ParagraphOrderer po(cfg);
  auto out = po.order_and_filter(
      {sp(1.0, 0, 0), sp(0.6, 1, 0), sp(0.49, 2, 0), sp(0.1, 3, 0)});
  ASSERT_EQ(out.size(), 2u);  // 0.49 and 0.1 fall below 0.5 * 1.0
}

TEST(OrderingTest, MaxAcceptedCaps) {
  ParagraphOrderer::Config cfg;
  cfg.relative_threshold = 0.0;
  cfg.max_accepted = 2;
  ParagraphOrderer po(cfg);
  auto out = po.order_and_filter({sp(0.3, 0, 0), sp(0.2, 1, 0), sp(0.1, 2, 0)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(OrderingTest, TieBreakIsDeterministic) {
  ParagraphOrderer po;
  auto out = po.order_and_filter({sp(0.5, 3, 0), sp(0.5, 1, 0), sp(0.5, 2, 0)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].paragraph.ref.doc, 1u);
  EXPECT_EQ(out[1].paragraph.ref.doc, 2u);
  EXPECT_EQ(out[2].paragraph.ref.doc, 3u);
}

TEST(OrderingTest, EmptyInput) {
  ParagraphOrderer po;
  EXPECT_TRUE(po.order_and_filter({}).empty());
}

}  // namespace
}  // namespace qadist::qa
