#include "qa/engine.hpp"

#include <gtest/gtest.h>

#include "ir/analyzer.hpp"
#include "support/test_world.hpp"

namespace qadist {
namespace {

using testing::test_world;

/// Normalizes an answer/gold string to lowercase tokens joined by spaces so
/// comparisons survive punctuation loss ("March 14 , 1912" == "march 14 1912").
std::string normalize(const std::string& text) {
  ir::Analyzer analyzer;
  std::string out;
  for (const auto& tok : analyzer.tokenize(text)) {
    if (!out.empty()) out += ' ';
    out += tok.text;
  }
  return out;
}

bool answered_correctly(const qa::QAResult& result,
                        const corpus::Question& question) {
  const std::string gold = normalize(question.gold_answer);
  for (const auto& answer : result.answers) {
    if (normalize(answer.candidate) == gold) return true;
  }
  return false;
}

TEST(EngineTest, AnswersSampleQuestionEndToEnd) {
  const auto& world = test_world();
  ASSERT_FALSE(world.questions.empty());
  const auto& q = world.questions.front();
  const auto result = world.engine->answer(q);
  EXPECT_FALSE(result.answers.empty()) << "no answers for: " << q.text;
}

TEST(EngineTest, AccuracyOverQuestionSetIsHigh) {
  const auto& world = test_world();
  std::size_t correct = 0;
  for (const auto& q : world.questions) {
    if (answered_correctly(world.engine->answer(q), q)) ++correct;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(world.questions.size());
  // FALCON answered 66.4% short / 86.1% long in TREC-9; our closed synthetic
  // world should do at least as well as the real system did on real text.
  EXPECT_GE(accuracy, 0.66) << "correct=" << correct << "/"
                            << world.questions.size();
}

TEST(EngineTest, ModuleTimesCoverPipeline) {
  const auto& world = test_world();
  const auto result = world.engine->answer(world.questions.front());
  EXPECT_GT(result.times.total(), 0.0);
  EXPECT_GE(result.times.pr, 0.0);
  EXPECT_GE(result.times.ap, 0.0);
  EXPECT_GT(result.work.paragraphs_retrieved, 0u);
  EXPECT_GT(result.work.paragraphs_accepted, 0u);
  EXPECT_LE(result.work.paragraphs_accepted, result.work.paragraphs_retrieved);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  const auto& world = test_world();
  const auto& q = world.questions.at(1);
  const auto a = world.engine->answer(q);
  const auto b = world.engine->answer(q);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].candidate, b.answers[i].candidate);
    EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score);
  }
}

TEST(EngineTest, StageApiMatchesEndToEnd) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  const auto& q = world.questions.at(2);

  const auto result = engine.answer(q);

  // Re-run via the stage API; must agree exactly.
  auto pq = engine.process_question(q.id, q.text);
  std::vector<qa::RetrievedParagraph> retrieved;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    auto batch = engine.retrieve(sub, pq);
    for (auto& p : batch) retrieved.push_back(std::move(p));
  }
  std::vector<qa::ScoredParagraph> scored;
  for (auto& p : retrieved) scored.push_back(engine.score(pq, std::move(p)));
  auto accepted = engine.order(std::move(scored));
  auto answers = engine.answer_paragraphs(pq, accepted);

  ASSERT_EQ(answers.size(), result.answers.size());
  for (std::size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].candidate, result.answers[i].candidate);
    EXPECT_DOUBLE_EQ(answers[i].score, result.answers[i].score);
  }
}

TEST(EngineTest, AnswersCarryExpectedType) {
  const auto& world = test_world();
  std::size_t typed = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 10 && i < world.questions.size(); ++i) {
    const auto& q = world.questions[i];
    const auto result = world.engine->answer(q);
    for (const auto& a : result.answers) {
      ++total;
      if (a.type == q.gold_type) ++typed;
    }
  }
  ASSERT_GT(total, 0u);
  // The AP type filter should make every returned answer match the
  // question's expected type whenever QP classified it correctly.
  EXPECT_GE(static_cast<double>(typed) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace qadist
