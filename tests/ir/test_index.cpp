#include "ir/inverted_index.hpp"

#include <gtest/gtest.h>

namespace qadist::ir {
namespace {

corpus::Collection tiny_collection() {
  corpus::Collection c;
  corpus::Document d0;
  d0.id = 0;
  d0.title = "first";
  d0.paragraphs = {"the amsen lighthouse stands tall",
                   "amsen harbor amsen ships"};
  c.add(std::move(d0));
  corpus::Document d1;
  d1.id = 1;
  d1.title = "second";
  d1.paragraphs = {"lighthouse keepers live here"};
  c.add(std::move(d1));
  return c;
}

TEST(InvertedIndexTest, BuildsPostingsWithTf) {
  const auto c = tiny_collection();
  const corpus::SubCollection sub(&c, 0, 2);
  Analyzer analyzer;
  const auto index = InvertedIndex::build(sub, analyzer);

  const auto* amsen = index.postings("amsen");
  ASSERT_NE(amsen, nullptr);
  ASSERT_EQ(amsen->size(), 2u);
  EXPECT_EQ((*amsen)[0], (Posting{0, 0, 1}));
  EXPECT_EQ((*amsen)[1], (Posting{0, 1, 2}));  // "amsen" twice in paragraph 1

  const auto* lighthouse = index.postings("lighthouse");
  ASSERT_NE(lighthouse, nullptr);
  EXPECT_EQ(lighthouse->size(), 2u);
  EXPECT_EQ(index.document_frequency("lighthouse"), 2u);
}

TEST(InvertedIndexTest, StopwordsNotIndexed) {
  const auto c = tiny_collection();
  const corpus::SubCollection sub(&c, 0, 2);
  Analyzer analyzer;
  const auto index = InvertedIndex::build(sub, analyzer);
  EXPECT_EQ(index.postings("the"), nullptr);
  EXPECT_EQ(index.document_frequency("the"), 0u);
}

TEST(InvertedIndexTest, RespectsSubCollectionBounds) {
  const auto c = tiny_collection();
  const corpus::SubCollection sub(&c, 1, 2);  // only doc 1
  Analyzer analyzer;
  const auto index = InvertedIndex::build(sub, analyzer);
  EXPECT_EQ(index.postings("amsen"), nullptr);
  const auto* keeper = index.postings("keeper");
  ASSERT_NE(keeper, nullptr);
  EXPECT_EQ((*keeper)[0].doc, 1u);
  EXPECT_EQ(index.paragraph_count(), 1u);
}

TEST(InvertedIndexTest, Counts) {
  const auto c = tiny_collection();
  const corpus::SubCollection sub(&c, 0, 2);
  Analyzer analyzer;
  const auto index = InvertedIndex::build(sub, analyzer);
  EXPECT_GT(index.term_count(), 5u);
  EXPECT_GT(index.posting_count(), index.term_count() - 1);
  EXPECT_EQ(index.paragraph_count(), 3u);
  EXPECT_GT(index.byte_size(), 0u);
}

TEST(InvertedIndexTest, EmptySubCollection) {
  const auto c = tiny_collection();
  const corpus::SubCollection sub(&c, 1, 1);
  Analyzer analyzer;
  const auto index = InvertedIndex::build(sub, analyzer);
  EXPECT_EQ(index.term_count(), 0u);
  EXPECT_EQ(index.paragraph_count(), 0u);
}

}  // namespace
}  // namespace qadist::ir
