#include "ir/retrieval.hpp"

#include <gtest/gtest.h>

#include "corpus/generator.hpp"

namespace qadist::ir {
namespace {

corpus::Collection docs_collection() {
  corpus::Collection c;
  const std::vector<std::vector<std::string>> docs = {
      {"alpha beta gamma", "alpha alpha delta"},
      {"beta gamma", "alpha beta gamma delta"},
      {"epsilon zeta"},
  };
  for (std::size_t i = 0; i < docs.size(); ++i) {
    corpus::Document d;
    d.id = static_cast<corpus::DocId>(i);
    d.title = "d" + std::to_string(i);
    d.paragraphs = docs[i];
    c.add(std::move(d));
  }
  return c;
}

class RetrievalTest : public ::testing::Test {
 protected:
  RetrievalTest()
      : collection_(docs_collection()),
        sub_(&collection_, 0, 3),
        index_(InvertedIndex::build(sub_, analyzer_)) {}

  corpus::Collection collection_;
  Analyzer analyzer_;
  corpus::SubCollection sub_;
  InvertedIndex index_;
};

TEST_F(RetrievalTest, IntersectFindsAllTermParagraphs) {
  const std::vector<std::string> terms = {"alpha", "beta", "gamma"};
  const auto matches = intersect_all(index_, terms);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].ref, (corpus::ParagraphRef{0, 0}));
  EXPECT_EQ(matches[1].ref, (corpus::ParagraphRef{1, 1}));
  EXPECT_EQ(matches[0].keywords_present, 3u);
}

TEST_F(RetrievalTest, IntersectMissingTermYieldsEmpty) {
  const std::vector<std::string> terms = {"alpha", "nonexistent"};
  EXPECT_TRUE(intersect_all(index_, terms).empty());
}

TEST_F(RetrievalTest, IntersectEmptyTermsYieldsEmpty) {
  EXPECT_TRUE(intersect_all(index_, {}).empty());
}

TEST_F(RetrievalTest, GallopingMatchesLinearReference) {
  const std::vector<std::vector<std::string>> queries = {
      {"alpha"},
      {"alpha", "beta"},
      {"alpha", "beta", "gamma"},
      {"beta", "gamma", "delta"},
      {"epsilon", "zeta"},
  };
  for (const auto& q : queries) {
    EXPECT_EQ(intersect_all(index_, q), intersect_all_linear(index_, q));
  }
}

TEST_F(RetrievalTest, UnionCountsDistinctKeywords) {
  const std::vector<std::string> terms = {"alpha", "delta"};
  const auto matches = union_count(index_, terms);
  // Paragraphs containing alpha or delta: (0,0) alpha, (0,1) both,
  // (1,1) both.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].ref, (corpus::ParagraphRef{0, 0}));
  EXPECT_EQ(matches[0].keywords_present, 1u);
  EXPECT_EQ(matches[1].keywords_present, 2u);
  EXPECT_EQ(matches[1].total_tf, 3u);  // alpha twice + delta once
  EXPECT_EQ(matches[2].keywords_present, 2u);
}

TEST_F(RetrievalTest, UnionResultsAreSorted) {
  const std::vector<std::string> terms = {"alpha", "beta", "gamma", "delta",
                                          "epsilon", "zeta"};
  const auto matches = union_count(index_, terms);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LT(matches[i - 1].ref, matches[i].ref);
  }
}

TEST_F(RetrievalTest, RetrieveRelaxesUntilEnoughResults) {
  const std::vector<std::string> terms = {"alpha", "beta", "gamma"};
  // Strict AND yields 2; asking for >= 3 forces relaxation to 2-of-3.
  const auto strict = retrieve(index_, terms, 1);
  EXPECT_EQ(strict.size(), 2u);
  const auto relaxed = retrieve(index_, terms, 3);
  EXPECT_GT(relaxed.size(), strict.size());
  for (const auto& m : relaxed) EXPECT_GE(m.keywords_present, 2u);
}

TEST_F(RetrievalTest, RetrieveBottomsOutAtOneKeyword) {
  const std::vector<std::string> terms = {"epsilon", "alpha"};
  const auto result = retrieve(index_, terms, 100);
  // 1-of-2 relaxation: every paragraph containing either word.
  EXPECT_EQ(result.size(), 4u);
}

// Property check on a realistic corpus: galloping == linear everywhere.
TEST(RetrievalPropertyTest, GallopingEqualsLinearOnGeneratedCorpus) {
  corpus::CorpusConfig cfg;
  cfg.seed = 21;
  cfg.num_documents = 80;
  cfg.vocabulary_size = 800;
  const auto corpus = corpus::generate_corpus(cfg);
  Analyzer analyzer;
  const corpus::SubCollection sub(&corpus.collection, 0,
                                  static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);

  const auto questions = corpus::generate_questions(corpus, 30, 1);
  for (const auto& q : questions) {
    const auto terms = analyzer.index_terms(q.text);
    EXPECT_EQ(intersect_all(index, terms), intersect_all_linear(index, terms))
        << q.text;
  }
}

}  // namespace
}  // namespace qadist::ir
