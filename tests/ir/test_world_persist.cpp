#include <gtest/gtest.h>

#include <sstream>

#include "ir/persist.hpp"
#include "qa/engine.hpp"
#include "qa/evaluation.hpp"

namespace qadist::ir {
namespace {

corpus::GeneratedCorpus small_world() {
  corpus::CorpusConfig cfg;
  cfg.seed = 77;
  cfg.num_documents = 60;
  cfg.vocabulary_size = 800;
  return corpus::generate_corpus(cfg);
}

TEST(WorldPersistTest, RoundTripsCollectionGazetteerAndFacts) {
  const auto world = small_world();
  std::stringstream s;
  save_world(world, s);
  const auto loaded = load_world(s);

  EXPECT_EQ(loaded.collection.size(), world.collection.size());
  EXPECT_EQ(loaded.collection.total_paragraphs(),
            world.collection.total_paragraphs());
  EXPECT_EQ(loaded.gazetteer.size(), world.gazetteer.size());
  EXPECT_EQ(loaded.gazetteer.max_tokens(), world.gazetteer.max_tokens());
  EXPECT_EQ(loaded.gazetteer.entries(), world.gazetteer.entries());

  ASSERT_EQ(loaded.facts.size(), world.facts.size());
  for (std::size_t i = 0; i < world.facts.size(); ++i) {
    EXPECT_EQ(loaded.facts[i].subject, world.facts[i].subject);
    EXPECT_EQ(loaded.facts[i].relation, world.facts[i].relation);
    EXPECT_EQ(loaded.facts[i].object, world.facts[i].object);
    EXPECT_EQ(loaded.facts[i].doc, world.facts[i].doc);
    EXPECT_EQ(loaded.facts[i].paragraph, world.facts[i].paragraph);
  }
}

TEST(WorldPersistTest, LoadedWorldAnswersQuestionsIdentically) {
  const auto world = small_world();
  std::stringstream s;
  save_world(world, s);
  const auto loaded = load_world(s);

  const qa::Engine original(world);
  const qa::Engine reloaded(loaded);
  const auto questions = corpus::generate_questions(world, 10, 3);
  for (const auto& q : questions) {
    const auto a = original.answer(q);
    const auto b = reloaded.answer(q);
    ASSERT_EQ(a.answers.size(), b.answers.size()) << q.text;
    for (std::size_t i = 0; i < a.answers.size(); ++i) {
      EXPECT_EQ(a.answers[i].candidate, b.answers[i].candidate);
      EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score);
    }
  }
}

TEST(WorldPersistTest, QuestionsRegenerateFromLoadedFacts) {
  const auto world = small_world();
  std::stringstream s;
  save_world(world, s);
  const auto loaded = load_world(s);
  const auto a = corpus::generate_questions(world, 20, 4);
  const auto b = corpus::generate_questions(loaded, 20, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].gold_answer, b[i].gold_answer);
  }
}

TEST(WorldPersistTest, FileRoundTrip) {
  const auto world = small_world();
  const std::string path = ::testing::TempDir() + "/qadist_world.bin";
  save_world_file(world, path);
  const auto loaded = load_world_file(path);
  EXPECT_EQ(loaded.collection.size(), world.collection.size());
  EXPECT_EQ(loaded.facts.size(), world.facts.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qadist::ir
