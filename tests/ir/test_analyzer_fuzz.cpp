// Robustness sweeps for the analyzer and retrieval path: random byte
// soup, pathological token shapes, and consistency invariants that must
// hold for arbitrary input.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "corpus/generator.hpp"
#include "ir/analyzer.hpp"
#include "ir/inverted_index.hpp"
#include "ir/retrieval.hpp"

namespace qadist::ir {
namespace {

std::string random_bytes(Rng& rng, std::size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.below(256));
  return s;
}

std::string random_ascii(Rng& rng, std::size_t n) {
  static constexpr char kAlphabet[] =
      "abc XYZ 0123 .,;!?$-_\t\n\"'()jklmnopq";
  std::string s(n, '\0');
  for (auto& c : s) c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  return s;
}

TEST(AnalyzerFuzzTest, ArbitraryBytesNeverCrash) {
  Rng rng(404);
  Analyzer a;
  for (int i = 0; i < 200; ++i) {
    const auto text = random_bytes(rng, rng.below(500));
    const auto tokens = a.tokenize(text);
    for (const auto& t : tokens) {
      EXPECT_FALSE(t.text.empty());
      for (char c : t.text) {
        // Tokens are lowercase alphanumerics or '$'.
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '$')
            << static_cast<int>(c);
      }
    }
  }
}

TEST(AnalyzerFuzzTest, PositionsAreDense) {
  Rng rng(405);
  Analyzer a;
  for (int i = 0; i < 100; ++i) {
    const auto tokens = a.tokenize(random_ascii(rng, rng.below(400)));
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      EXPECT_EQ(tokens[t].position, t);
    }
  }
}

TEST(AnalyzerFuzzTest, StemNeverGrowsNorEmpties) {
  Rng rng(406);
  Analyzer a;
  for (int i = 0; i < 500; ++i) {
    std::string word;
    const auto len = 1 + rng.below(12);
    for (std::uint64_t k = 0; k < len; ++k) {
      word += static_cast<char>('a' + rng.below(26));
    }
    const auto stemmed = a.stem(word);
    EXPECT_LE(stemmed.size(), word.size() + 1);  // "ies"->"y" can't grow net
    EXPECT_FALSE(stemmed.empty());
  }
}

TEST(AnalyzerFuzzTest, IndexTermsNeverContainStopwords) {
  Rng rng(407);
  Analyzer a;
  for (int i = 0; i < 100; ++i) {
    for (const auto& term : a.index_terms(random_ascii(rng, 300))) {
      EXPECT_FALSE(is_stopword(term)) << term;
      EXPECT_FALSE(term.empty());
    }
  }
}

TEST(RetrievalFuzzTest, RetrieveOnEmptyIndexIsEmpty) {
  corpus::Collection c;
  corpus::Document d;
  d.id = 0;
  d.title = "t";
  d.paragraphs = {};
  c.add(std::move(d));
  const corpus::SubCollection sub(&c, 0, 1);
  Analyzer a;
  const auto index = InvertedIndex::build(sub, a);
  const std::vector<std::string> terms = {"anything"};
  EXPECT_TRUE(retrieve(index, terms, 10).empty());
  EXPECT_TRUE(intersect_all(index, terms).empty());
  EXPECT_TRUE(union_count(index, terms).empty());
}

TEST(RetrievalFuzzTest, RepeatedQueryTermsAreHarmless) {
  corpus::Collection c;
  corpus::Document d;
  d.id = 0;
  d.title = "t";
  d.paragraphs = {"alpha beta alpha"};
  c.add(std::move(d));
  const corpus::SubCollection sub(&c, 0, 1);
  Analyzer a;
  const auto index = InvertedIndex::build(sub, a);
  const std::vector<std::string> repeated = {"alpha", "alpha", "alpha"};
  const auto matches = intersect_all(index, repeated);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].keywords_present, 3u);  // counts query slots
}

TEST(RetrievalFuzzTest, RandomQueriesSatisfyContainment) {
  // For any query: AND result is a subset of the union result, and the
  // relaxed retrieve() is between them.
  corpus::CorpusConfig cc;
  cc.seed = 5;
  cc.num_documents = 50;
  cc.vocabulary_size = 400;
  const auto world = corpus::generate_corpus(cc);
  Analyzer a;
  const corpus::SubCollection sub(
      &world.collection, 0,
      static_cast<corpus::DocId>(world.collection.size()));
  const auto index = InvertedIndex::build(sub, a);

  Rng rng(901);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> terms;
    const auto n_terms = 1 + rng.below(4);
    for (std::uint64_t t = 0; t < n_terms; ++t) {
      const auto doc = rng.below(world.collection.size());
      const auto& text = world.collection.document(
          static_cast<corpus::DocId>(doc));
      const auto candidates = a.index_terms(text.paragraphs[0]);
      if (!candidates.empty()) {
        terms.push_back(candidates[rng.below(candidates.size())]);
      }
    }
    if (terms.empty()) continue;
    const auto strict = intersect_all(index, terms);
    const auto all = union_count(index, terms);
    const auto relaxed = retrieve(index, terms, 5);
    EXPECT_LE(strict.size(), all.size());
    EXPECT_LE(strict.size(), relaxed.size());
    EXPECT_LE(relaxed.size(), all.size());
  }
}

}  // namespace
}  // namespace qadist::ir
