#include "ir/analyzer.hpp"

#include <gtest/gtest.h>

namespace qadist::ir {
namespace {

TEST(AnalyzerTest, TokenizeLowercasesAndFlags) {
  Analyzer a;
  const auto tokens = a.tokenize("Port Amsen has 34000 people.");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "port");
  EXPECT_TRUE(tokens[0].capitalized);
  EXPECT_EQ(tokens[1].text, "amsen");
  EXPECT_TRUE(tokens[1].capitalized);
  EXPECT_FALSE(tokens[2].capitalized);
  EXPECT_TRUE(tokens[3].numeric);
  EXPECT_EQ(tokens[3].text, "34000");
  EXPECT_EQ(tokens[4].text, "people");
}

TEST(AnalyzerTest, DollarIsItsOwnToken) {
  Analyzer a;
  const auto tokens = a.tokenize("cost $ 12 million");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "$");
}

TEST(AnalyzerTest, PunctuationSeparates) {
  Analyzer a;
  const auto tokens = a.tokenize("a,b;c.d");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[3].text, "d");
  EXPECT_EQ(tokens[3].position, 3u);
}

TEST(AnalyzerTest, EmptyAndWhitespaceInputs) {
  Analyzer a;
  EXPECT_TRUE(a.tokenize("").empty());
  EXPECT_TRUE(a.tokenize("  \t\n ...!?").empty());
}

TEST(AnalyzerTest, StemmerRules) {
  Analyzer a;
  EXPECT_EQ(a.stem("founded"), "found");
  EXPECT_EQ(a.stem("cities"), "city");
  EXPECT_EQ(a.stem("running"), "runn");
  EXPECT_EQ(a.stem("churches"), "church");
  EXPECT_EQ(a.stem("lighthouses"), "lighthouse");
  // Guards: short words and -ss words untouched.
  EXPECT_EQ(a.stem("is"), "is");
  EXPECT_EQ(a.stem("class"), "class");
  EXPECT_EQ(a.stem("gas"), "gas");
}

TEST(AnalyzerTest, StemIsIdempotentOnCommonForms) {
  Analyzer a;
  for (const char* w : {"found", "city", "treat", "monument", "harbor"}) {
    EXPECT_EQ(a.stem(a.stem(w)), a.stem(w)) << w;
  }
}

TEST(AnalyzerTest, IndexTermsDropStopwordsAndStem) {
  Analyzer a;
  const auto terms = a.index_terms("Where is the Amsen Lighthouse located?");
  // "where", "is", "the" are stopwords.
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "amsen");
  EXPECT_EQ(terms[1], "lighthouse");
  EXPECT_EQ(terms[2], "locat");
}

TEST(AnalyzerTest, NumbersKeptVerbatim) {
  Analyzer a;
  const auto terms = a.index_terms("population of 340000");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[1], "340000");
}

TEST(StopwordTest, QuestionWordsAreStopwords) {
  for (const char* w : {"where", "who", "when", "what", "how", "the", "of"}) {
    EXPECT_TRUE(is_stopword(w)) << w;
  }
  for (const char* w : {"population", "nationality", "cost", "treat",
                        "founded", "leader"}) {
    EXPECT_FALSE(is_stopword(w)) << w;
  }
}

}  // namespace
}  // namespace qadist::ir
