#include "ir/persist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/generator.hpp"
#include "ir/binary_io.hpp"
#include "ir/inverted_index.hpp"
#include "ir/retrieval.hpp"

namespace qadist::ir {
namespace {

TEST(BinaryIoTest, VarintRoundTrips) {
  std::stringstream s;
  BinaryWriter w(s);
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     1u << 20,
                                  ~0ull >> 1,  ~0ull};
  for (auto v : values) w.write_varint(v);
  BinaryReader r(s);
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
}

TEST(BinaryIoTest, VarintIsCompactForSmallValues) {
  std::stringstream s;
  BinaryWriter w(s);
  for (int i = 0; i < 100; ++i) w.write_varint(5);
  EXPECT_EQ(s.str().size(), 100u);  // one byte each
}

TEST(PersistTest, VarintIndexIsSmallerThanFixedWidth) {
  const auto corpus = [] {
    corpus::CorpusConfig cfg;
    cfg.seed = 10;
    cfg.num_documents = 40;
    cfg.vocabulary_size = 600;
    return corpus::generate_corpus(cfg);
  }();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);
  std::stringstream s;
  index.save(s);
  // v1 stored 12 bytes per posting; the delta-varint layout should cut
  // posting storage by well over half.
  const std::size_t fixed_width_posting_bytes = index.posting_count() * 12;
  EXPECT_LT(s.str().size(), fixed_width_posting_bytes);
}

TEST(BinaryIoTest, RoundTripsPrimitives) {
  std::stringstream s;
  BinaryWriter w(s);
  w.write_u8(7);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_string("hello world");
  w.write_string("");

  BinaryReader r(s);
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
}

corpus::GeneratedCorpus small_corpus() {
  corpus::CorpusConfig cfg;
  cfg.seed = 10;
  cfg.num_documents = 40;
  cfg.vocabulary_size = 600;
  return corpus::generate_corpus(cfg);
}

TEST(PersistTest, CollectionRoundTrip) {
  const auto corpus = small_corpus();
  std::stringstream s;
  save_collection(corpus.collection, s);
  const auto loaded = load_collection(s);
  ASSERT_EQ(loaded.size(), corpus.collection.size());
  ASSERT_EQ(loaded.total_paragraphs(), corpus.collection.total_paragraphs());
  for (corpus::DocId id = 0; id < loaded.size(); ++id) {
    EXPECT_EQ(loaded.document(id).title, corpus.collection.document(id).title);
    EXPECT_EQ(loaded.document(id).paragraphs,
              corpus.collection.document(id).paragraphs);
  }
}

TEST(PersistTest, IndexRoundTripPreservesQueries) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0, static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);

  std::stringstream s;
  index.save(s);
  const auto loaded = InvertedIndex::load(s);

  EXPECT_EQ(loaded.term_count(), index.term_count());
  EXPECT_EQ(loaded.posting_count(), index.posting_count());
  EXPECT_EQ(loaded.paragraph_count(), index.paragraph_count());

  // Spot-check the postings of the fact subjects' terms.
  for (std::size_t f = 0; f < std::min<std::size_t>(corpus.facts.size(), 10); ++f) {
    for (const auto& term : analyzer.index_terms(corpus.facts[f].subject)) {
      const auto* a = index.postings(term);
      const auto* b = loaded.postings(term);
      ASSERT_NE(a, nullptr) << term;
      ASSERT_NE(b, nullptr) << term;
      EXPECT_EQ(*a, *b) << term;
    }
  }
}

TEST(PersistTest, IndexFileIsDeterministic) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0, static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);
  std::stringstream s1, s2;
  index.save(s1);
  index.save(s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(PersistTest, FileRoundTrip) {
  const auto corpus = small_corpus();
  const std::string path = ::testing::TempDir() + "/qadist_collection.bin";
  save_collection_file(corpus.collection, path);
  const auto loaded = load_collection_file(path);
  EXPECT_EQ(loaded.size(), corpus.collection.size());
  std::remove(path.c_str());
}

/// Retrieval queries drawn from the corpus ground truth (fact subjects
/// analyze to terms that actually occur).
std::vector<std::vector<std::string>> sample_queries(
    const corpus::GeneratedCorpus& corpus, const Analyzer& analyzer) {
  std::vector<std::vector<std::string>> queries;
  for (std::size_t f = 0; f < std::min<std::size_t>(corpus.facts.size(), 10);
       ++f) {
    auto terms = analyzer.index_terms(corpus.facts[f].subject);
    if (!terms.empty()) queries.push_back(std::move(terms));
  }
  return queries;
}

TEST(PersistTest, LoadedIndexAnswersQueriesIdentically) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);
  std::stringstream s;
  index.save(s);
  const auto loaded = InvertedIndex::load(s);
  for (const auto& terms : sample_queries(corpus, analyzer)) {
    EXPECT_EQ(retrieve(loaded, terms, 5), retrieve(index, terms, 5));
    EXPECT_EQ(intersect_all(loaded, terms), intersect_all(index, terms));
  }
}

TEST(PersistDeathTest, LoadRejectsACorruptMagic) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  std::stringstream s;
  InvertedIndex::build(sub, analyzer).save(s);
  std::string bytes = s.str();
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);
  std::istringstream corrupt(bytes);
  EXPECT_DEATH((void)InvertedIndex::load(corrupt), "not a qadist index file");
}

TEST(PersistDeathTest, LoadRejectsAnUnsupportedVersion) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  std::stringstream s;
  InvertedIndex::build(sub, analyzer).save(s);
  std::string bytes = s.str();
  bytes[4] = 0x7F;  // version word follows the 4-byte magic
  std::istringstream corrupt(bytes);
  EXPECT_DEATH((void)InvertedIndex::load(corrupt),
               "unsupported index version");
}

TEST(PersistDeathTest, LoadPanicsOnATruncatedStream) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  std::stringstream s;
  InvertedIndex::build(sub, analyzer).save(s);
  const std::string bytes = s.str();
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_DEATH((void)InvertedIndex::load(truncated), "");
}

TEST(PersistTest, ShardIndexesPartitionTheCollection) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 4, analyzer);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t paragraphs = 0;
  for (const auto& shard : shards) paragraphs += shard.paragraph_count();
  EXPECT_EQ(paragraphs, corpus.collection.total_paragraphs());
  // One shard is just the whole-collection index.
  const auto whole = build_shard_indexes(corpus.collection, 1, analyzer);
  ASSERT_EQ(whole.size(), 1u);
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  EXPECT_EQ(whole[0].posting_count(),
            InvertedIndex::build(sub, analyzer).posting_count());
}

TEST(PersistTest, ShardSetRoundTripPreservesEveryShard) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 4, analyzer);
  std::stringstream s;
  save_index_shards(shards, s);
  const auto loaded = load_index_shards(s);
  ASSERT_EQ(loaded.size(), shards.size());
  const auto queries = sample_queries(corpus, analyzer);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(loaded[i].term_count(), shards[i].term_count());
    EXPECT_EQ(loaded[i].posting_count(), shards[i].posting_count());
    EXPECT_EQ(loaded[i].paragraph_count(), shards[i].paragraph_count());
    for (const auto& terms : queries) {
      EXPECT_EQ(retrieve(loaded[i], terms, 5), retrieve(shards[i], terms, 5));
    }
  }
}

TEST(PersistTest, ShardSetSupportsSeekingToASingleShard) {
  // The replica-holder path: load shard 2 without reading shards 0/1/3.
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 4, analyzer);
  std::stringstream s;
  save_index_shards(shards, s);
  const auto info = read_shard_set_info(s);
  ASSERT_EQ(info.num_shards, 4u);
  ASSERT_EQ(info.shard_bytes.size(), 4u);
  ASSERT_EQ(info.shard_offsets.size(), 4u);
  const auto one = load_index_shard(s, info, 2);
  EXPECT_EQ(one.posting_count(), shards[2].posting_count());
  EXPECT_EQ(one.paragraph_count(), shards[2].paragraph_count());
  // Out-of-order access works too — offsets are absolute.
  const auto zero = load_index_shard(s, info, 0);
  EXPECT_EQ(zero.posting_count(), shards[0].posting_count());
}

TEST(PersistTest, ShardSetFileRoundTrip) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 3, analyzer);
  const std::string path = ::testing::TempDir() + "/qadist_shards.bin";
  save_index_shards_file(shards, path);
  const auto loaded = load_index_shards_file(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded[i].posting_count(), shards[i].posting_count());
  }
  std::remove(path.c_str());
}

TEST(PersistDeathTest, ShardSetRejectsCorruptInput) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 2, analyzer);
  std::stringstream s;
  save_index_shards(shards, s);
  const std::string bytes = s.str();

  std::string bad_magic = bytes;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xFF);
  std::istringstream m(bad_magic);
  EXPECT_DEATH((void)read_shard_set_info(m), "not a qadist shard-set file");

  std::string bad_version = bytes;
  bad_version[4] = 0x7F;
  std::istringstream v(bad_version);
  EXPECT_DEATH((void)read_shard_set_info(v), "unsupported shard-set version");

  std::string zero_shards = bytes;
  zero_shards[8] = zero_shards[9] = zero_shards[10] = zero_shards[11] = 0;
  std::istringstream z(zero_shards);
  EXPECT_DEATH((void)read_shard_set_info(z), "zero shards");

  std::istringstream truncated(bytes.substr(0, bytes.size() - 16));
  EXPECT_DEATH((void)load_index_shards(truncated), "");
}

TEST(PersistDeathTest, ShardIndexOutOfRangePanics) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const auto shards = build_shard_indexes(corpus.collection, 2, analyzer);
  std::stringstream s;
  save_index_shards(shards, s);
  const auto info = read_shard_set_info(s);
  EXPECT_DEATH((void)load_index_shard(s, info, 2), "");
}

}  // namespace
}  // namespace qadist::ir
