#include "ir/persist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/generator.hpp"
#include "ir/binary_io.hpp"
#include "ir/inverted_index.hpp"

namespace qadist::ir {
namespace {

TEST(BinaryIoTest, VarintRoundTrips) {
  std::stringstream s;
  BinaryWriter w(s);
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     1u << 20,
                                  ~0ull >> 1,  ~0ull};
  for (auto v : values) w.write_varint(v);
  BinaryReader r(s);
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
}

TEST(BinaryIoTest, VarintIsCompactForSmallValues) {
  std::stringstream s;
  BinaryWriter w(s);
  for (int i = 0; i < 100; ++i) w.write_varint(5);
  EXPECT_EQ(s.str().size(), 100u);  // one byte each
}

TEST(PersistTest, VarintIndexIsSmallerThanFixedWidth) {
  const auto corpus = [] {
    corpus::CorpusConfig cfg;
    cfg.seed = 10;
    cfg.num_documents = 40;
    cfg.vocabulary_size = 600;
    return corpus::generate_corpus(cfg);
  }();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0,
      static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);
  std::stringstream s;
  index.save(s);
  // v1 stored 12 bytes per posting; the delta-varint layout should cut
  // posting storage by well over half.
  const std::size_t fixed_width_posting_bytes = index.posting_count() * 12;
  EXPECT_LT(s.str().size(), fixed_width_posting_bytes);
}

TEST(BinaryIoTest, RoundTripsPrimitives) {
  std::stringstream s;
  BinaryWriter w(s);
  w.write_u8(7);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_string("hello world");
  w.write_string("");

  BinaryReader r(s);
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
}

corpus::GeneratedCorpus small_corpus() {
  corpus::CorpusConfig cfg;
  cfg.seed = 10;
  cfg.num_documents = 40;
  cfg.vocabulary_size = 600;
  return corpus::generate_corpus(cfg);
}

TEST(PersistTest, CollectionRoundTrip) {
  const auto corpus = small_corpus();
  std::stringstream s;
  save_collection(corpus.collection, s);
  const auto loaded = load_collection(s);
  ASSERT_EQ(loaded.size(), corpus.collection.size());
  ASSERT_EQ(loaded.total_paragraphs(), corpus.collection.total_paragraphs());
  for (corpus::DocId id = 0; id < loaded.size(); ++id) {
    EXPECT_EQ(loaded.document(id).title, corpus.collection.document(id).title);
    EXPECT_EQ(loaded.document(id).paragraphs,
              corpus.collection.document(id).paragraphs);
  }
}

TEST(PersistTest, IndexRoundTripPreservesQueries) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0, static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);

  std::stringstream s;
  index.save(s);
  const auto loaded = InvertedIndex::load(s);

  EXPECT_EQ(loaded.term_count(), index.term_count());
  EXPECT_EQ(loaded.posting_count(), index.posting_count());
  EXPECT_EQ(loaded.paragraph_count(), index.paragraph_count());

  // Spot-check the postings of the fact subjects' terms.
  for (std::size_t f = 0; f < std::min<std::size_t>(corpus.facts.size(), 10); ++f) {
    for (const auto& term : analyzer.index_terms(corpus.facts[f].subject)) {
      const auto* a = index.postings(term);
      const auto* b = loaded.postings(term);
      ASSERT_NE(a, nullptr) << term;
      ASSERT_NE(b, nullptr) << term;
      EXPECT_EQ(*a, *b) << term;
    }
  }
}

TEST(PersistTest, IndexFileIsDeterministic) {
  const auto corpus = small_corpus();
  Analyzer analyzer;
  const corpus::SubCollection sub(
      &corpus.collection, 0, static_cast<corpus::DocId>(corpus.collection.size()));
  const auto index = InvertedIndex::build(sub, analyzer);
  std::stringstream s1, s2;
  index.save(s1);
  index.save(s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(PersistTest, FileRoundTrip) {
  const auto corpus = small_corpus();
  const std::string path = ::testing::TempDir() + "/qadist_collection.bin";
  save_collection_file(corpus.collection, path);
  const auto loaded = load_collection_file(path);
  EXPECT_EQ(loaded.size(), corpus.collection.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qadist::ir
