// Property sweeps of the partitioners over an (items x workers) grid: the
// coverage/consistency invariants must hold for every combination.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "parallel/partition.hpp"

namespace qadist::parallel {
namespace {

struct Grid {
  std::size_t items;
  std::size_t workers;
};

class PartitionProperties : public ::testing::TestWithParam<Grid> {};

void check_cover(const std::vector<Partition>& parts, std::size_t items) {
  std::set<std::size_t> seen;
  for (const auto& p : parts) {
    for (std::size_t i : p.items) {
      ASSERT_LT(i, items);
      ASSERT_TRUE(seen.insert(i).second) << "item " << i << " duplicated";
    }
  }
  ASSERT_EQ(seen.size(), items);
}

TEST_P(PartitionProperties, SendCoversExactlyOnce) {
  const auto [items, workers] = GetParam();
  const std::vector<double> weights(workers, 1.0);
  check_cover(partition_send(items, weights), items);
}

TEST_P(PartitionProperties, IsendCoversExactlyOnce) {
  const auto [items, workers] = GetParam();
  const std::vector<double> weights(workers, 1.0);
  check_cover(partition_isend(items, weights), items);
}

TEST_P(PartitionProperties, WeightedCountsMatchApportion) {
  const auto [items, workers] = GetParam();
  Rng rng(items * 31 + workers);
  std::vector<double> weights(workers);
  for (auto& w : weights) w = rng.uniform(0.1, 5.0);
  const auto counts = apportion(items, weights);
  // Zero-count workers get no Partition entry, so map back via .worker
  // instead of indexing positionally.
  std::vector<std::size_t> send_counts(workers, 0);
  std::vector<std::size_t> isend_counts(workers, 0);
  for (const auto& p : partition_send(items, weights)) {
    ASSERT_LT(p.worker, workers);
    ASSERT_FALSE(p.items.empty()) << "empty partition not dropped";
    send_counts[p.worker] = p.items.size();
  }
  for (const auto& p : partition_isend(items, weights)) {
    ASSERT_LT(p.worker, workers);
    ASSERT_FALSE(p.items.empty()) << "empty partition not dropped";
    isend_counts[p.worker] = p.items.size();
  }
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_EQ(send_counts[w], counts[w]);
    EXPECT_EQ(isend_counts[w], counts[w]);
  }
}

TEST_P(PartitionProperties, ApportionCountsSumToTotal) {
  const auto [items, workers] = GetParam();
  Rng rng(items * 131 + workers);
  std::vector<double> weights(workers);
  for (auto& w : weights) w = rng.uniform(0.0, 3.0);
  if (std::accumulate(weights.begin(), weights.end(), 0.0) == 0.0) {
    weights[0] = 1.0;
  }
  const auto counts = apportion(items, weights);
  ASSERT_EQ(counts.size(), workers);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            items);
}

TEST_P(PartitionProperties, ZeroWeightWorkersGetNoPartition) {
  const auto [items, workers] = GetParam();
  // Worker 0 carries all the weight; the rest are zero.
  std::vector<double> weights(workers, 0.0);
  weights[0] = 1.0;
  const auto send = partition_send(items, weights);
  const auto isend = partition_isend(items, weights);
  for (const auto* parts : {&send, &isend}) {
    std::size_t total = 0;
    for (const auto& p : *parts) {
      EXPECT_EQ(p.worker, 0u) << "zero-weight worker received items";
      EXPECT_FALSE(p.items.empty());
      total += p.items.size();
    }
    EXPECT_EQ(total, items);
  }
}

TEST_P(PartitionProperties, FinalPaddedChunkIsBounded) {
  const auto [items, workers] = GetParam();
  const std::size_t chunk_size = std::max<std::size_t>(1, items / (2 * workers));
  const auto chunks = make_chunks(items, chunk_size);
  // Every chunk but the last is exactly chunk_size; the last absorbs the
  // remainder and stays below 2 * chunk_size (paper Fig. 6a padding).
  for (std::size_t c = 0; c + 1 < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].size(), chunk_size);
  }
  if (!chunks.empty()) {
    EXPECT_LE(chunks.back().size(), 2 * chunk_size - 1);
    EXPECT_GE(chunks.back().size(), 1u);
  }
}

TEST_P(PartitionProperties, SendBlocksAreContiguousAndOrdered) {
  const auto [items, workers] = GetParam();
  const std::vector<double> weights(workers, 1.0);
  const auto parts = partition_send(items, weights);
  std::size_t expected = 0;
  for (const auto& p : parts) {
    for (std::size_t i : p.items) {
      EXPECT_EQ(i, expected);
      ++expected;
    }
  }
}

TEST_P(PartitionProperties, IsendItemsAreStrictlyIncreasingPerWorker) {
  const auto [items, workers] = GetParam();
  const std::vector<double> weights(workers, 1.0);
  for (const auto& p : partition_isend(items, weights)) {
    for (std::size_t k = 1; k < p.items.size(); ++k) {
      EXPECT_GT(p.items[k], p.items[k - 1]);
    }
  }
}

TEST_P(PartitionProperties, ChunksTileTheRange) {
  const auto [items, workers] = GetParam();
  const std::size_t chunk_size = std::max<std::size_t>(1, items / (2 * workers));
  const auto chunks = make_chunks(items, chunk_size);
  std::size_t expected = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expected);
    EXPECT_GT(c.end, c.begin);
    expected = c.end;
  }
  EXPECT_EQ(expected, items);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionProperties,
    ::testing::Values(Grid{0, 1}, Grid{1, 1}, Grid{1, 8}, Grid{7, 3},
                      Grid{8, 8}, Grid{100, 7}, Grid{881, 12},
                      Grid{881, 16}, Grid{10000, 5}),
    [](const auto& info) {
      return "i" + std::to_string(info.param.items) + "_w" +
             std::to_string(info.param.workers);
    });

}  // namespace
}  // namespace qadist::parallel
