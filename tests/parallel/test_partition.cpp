#include "parallel/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace qadist::parallel {
namespace {

std::set<std::size_t> all_items(const std::vector<Partition>& parts) {
  std::set<std::size_t> items;
  for (const auto& p : parts) {
    for (auto i : p.items) {
      EXPECT_TRUE(items.insert(i).second) << "item " << i << " duplicated";
    }
  }
  return items;
}

TEST(ApportionTest, EqualWeightsSplitEvenly) {
  const std::vector<double> w(4, 1.0);
  const auto counts = apportion(8, w);
  for (auto c : counts) EXPECT_EQ(c, 2u);
}

TEST(ApportionTest, SumsExactly) {
  const std::vector<double> w = {0.37, 1.9, 0.01, 2.2, 0.7};
  for (std::size_t total : {0u, 1u, 7u, 100u, 881u}) {
    const auto counts = apportion(total, w);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
              total);
  }
}

TEST(ApportionTest, ProportionalToWeights) {
  const std::vector<double> w = {1.0, 3.0};
  const auto counts = apportion(100, w);
  EXPECT_EQ(counts[0], 25u);
  EXPECT_EQ(counts[1], 75u);
}

TEST(ApportionTest, ZeroWeightGetsNothingWhenDivisible) {
  const std::vector<double> w = {0.0, 1.0};
  const auto counts = apportion(10, w);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 10u);
}

TEST(SendPartitionTest, ContiguousBlocks) {
  const std::vector<double> w = {1.0, 1.0, 2.0};
  const auto parts = partition_send(8, w);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].items, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(parts[1].items, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(parts[2].items, (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_EQ(all_items(parts).size(), 8u);
}

TEST(IsendPartitionTest, InterleavesRoundRobin) {
  const std::vector<double> w = {1.0, 1.0};
  const auto parts = partition_isend(6, w);
  EXPECT_EQ(parts[0].items, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(parts[1].items, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(IsendPartitionTest, SameCountsAsSend) {
  const std::vector<double> w = {0.5, 1.5, 1.0};
  const auto send = partition_send(100, w);
  const auto isend = partition_isend(100, w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(send[i].items.size(), isend[i].items.size());
  }
  EXPECT_EQ(all_items(isend).size(), 100u);
}

TEST(IsendPartitionTest, BalancesLinearlyDecreasingCosts) {
  // Cost of item i = N - i (sorted descending, like PO output). ISEND's
  // per-worker cost totals must be far closer than SEND's.
  const std::size_t n = 100;
  const std::vector<double> w(4, 1.0);
  const auto cost = [n](std::size_t i) {
    return static_cast<double>(n - i);
  };
  const auto spread = [&](const std::vector<Partition>& parts) {
    double lo = 1e18, hi = 0;
    for (const auto& p : parts) {
      double total = 0;
      for (auto i : p.items) total += cost(i);
      lo = std::min(lo, total);
      hi = std::max(hi, total);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(partition_isend(n, w)), spread(partition_send(n, w)) / 10);
}

TEST(ChunkTest, EqualChunksWithPaddedLast) {
  const auto chunks = make_chunks(10, 4);
  // 10/4 = 2 full chunks; remainder absorbed into the last -> [0,4) [4,10).
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], (Chunk{0, 4}));
  EXPECT_EQ(chunks[1], (Chunk{4, 10}));
}

TEST(ChunkTest, ExactDivision) {
  const auto chunks = make_chunks(12, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2], (Chunk{8, 12}));
}

TEST(ChunkTest, FewerItemsThanChunkSize) {
  const auto chunks = make_chunks(3, 10);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (Chunk{0, 3}));
}

TEST(ChunkTest, ZeroItems) {
  EXPECT_TRUE(make_chunks(0, 5).empty());
}

TEST(ChunkTest, CoverageIsExactAndDisjoint) {
  for (std::size_t n : {1u, 5u, 40u, 881u}) {
    for (std::size_t cs : {1u, 5u, 40u, 100u}) {
      const auto chunks = make_chunks(n, cs);
      std::size_t expected_begin = 0;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.begin, expected_begin);
        EXPECT_GT(c.end, c.begin);
        expected_begin = c.end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(StrategyTest, Names) {
  EXPECT_EQ(to_string(Strategy::kSend), "SEND");
  EXPECT_EQ(to_string(Strategy::kIsend), "ISEND");
  EXPECT_EQ(to_string(Strategy::kRecv), "RECV");
}

}  // namespace
}  // namespace qadist::parallel
