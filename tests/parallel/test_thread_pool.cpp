#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace qadist::parallel {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not block
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolIsSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });  // safe: 1 worker
  }
  pool.wait_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after the throw.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, OnlyFirstExceptionOfBatchIsReported) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // the batch's remaining failures were dropped
  SUCCEED();
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorker) {
  ThreadPool pool(1);  // a single worker must survive its task throwing
  pool.submit([] { throw std::runtime_error("boom"); });
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace qadist::parallel
