#include "parallel/qa_stages.hpp"

#include <gtest/gtest.h>

#include "support/test_world.hpp"

namespace qadist::parallel {
namespace {

using testing::test_world;

ExecutorOptions recv_options(std::size_t workers, std::size_t chunk = 10) {
  ExecutorOptions o;
  o.strategy = Strategy::kRecv;
  o.workers = workers;
  o.chunk_size = chunk;
  return o;
}

class QaStagesTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(QaStagesTest, ParallelApMatchesSequential) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  ThreadPool pool(4);

  const auto& q = world.questions.at(0);
  const auto sequential = engine.answer(q);

  auto pq = engine.process_question(q.id, q.text);
  std::vector<qa::ScoredParagraph> scored;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    for (auto& p : engine.retrieve(sub, pq)) {
      scored.push_back(engine.score(pq, std::move(p)));
    }
  }
  auto accepted = engine.order(std::move(scored));

  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 4;
  options.chunk_size = 5;
  const auto parallel =
      parallel_answer_processing(engine, pq, accepted, pool, options);

  ASSERT_EQ(parallel.answers.size(), sequential.answers.size());
  for (std::size_t i = 0; i < parallel.answers.size(); ++i) {
    EXPECT_EQ(parallel.answers[i].candidate, sequential.answers[i].candidate);
    EXPECT_DOUBLE_EQ(parallel.answers[i].score, sequential.answers[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, QaStagesTest,
                         ::testing::Values(Strategy::kSend, Strategy::kIsend,
                                           Strategy::kRecv),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(QaStagesTest2, ParallelRetrievalMatchesSequentialSet) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  ThreadPool pool(4);

  const auto& q = world.questions.at(1);
  auto pq = engine.process_question(q.id, q.text);

  std::vector<qa::ScoredParagraph> sequential;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    for (auto& p : engine.retrieve(sub, pq)) {
      sequential.push_back(engine.score(pq, std::move(p)));
    }
  }

  const auto parallel =
      parallel_retrieve_and_score(engine, pq, pool, recv_options(4, 1));
  ASSERT_EQ(parallel.paragraphs.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel.paragraphs[i].paragraph.ref,
              sequential[i].paragraph.ref);
    EXPECT_DOUBLE_EQ(parallel.paragraphs[i].score, sequential[i].score);
  }
}

TEST(QaStagesTest2, AnswerParallelEndToEndMatchesSequential) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  ThreadPool pool(4);

  const auto& q = world.questions.at(2);
  const auto sequential = engine.answer(q);
  const auto parallel = answer_parallel(engine, q.id, q.text, pool,
                                        recv_options(4, 1), recv_options(4, 8));
  ASSERT_EQ(parallel.answers.size(), sequential.answers.size());
  for (std::size_t i = 0; i < parallel.answers.size(); ++i) {
    EXPECT_EQ(parallel.answers[i].candidate, sequential.answers[i].candidate);
  }
  EXPECT_EQ(parallel.work.paragraphs_accepted,
            sequential.work.paragraphs_accepted);
}

TEST(QaStagesTest2, AnswerBatchMatchesSequentialPerQuestion) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  ThreadPool pool(4);
  const auto batch = std::span<const corpus::Question>(world.questions)
                         .subspan(0, 12);
  const auto results = answer_batch(engine, batch, pool);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto sequential = engine.answer(batch[i]);
    ASSERT_EQ(results[i].answers.size(), sequential.answers.size())
        << batch[i].text;
    for (std::size_t k = 0; k < sequential.answers.size(); ++k) {
      EXPECT_EQ(results[i].answers[k].candidate,
                sequential.answers[k].candidate);
    }
    EXPECT_EQ(results[i].question.id, batch[i].id);
  }
}

TEST(QaStagesTest2, AnswerBatchEmptyInput) {
  const auto& world = test_world();
  ThreadPool pool(2);
  EXPECT_TRUE(
      answer_batch(*world.engine, std::span<const corpus::Question>{}, pool)
          .empty());
}

TEST(QaStagesTest2, ApSurvivesWorkerFailure) {
  const auto& world = test_world();
  const auto& engine = *world.engine;
  ThreadPool pool(4);

  const auto& q = world.questions.at(3);
  const auto sequential = engine.answer(q);

  auto pq = engine.process_question(q.id, q.text);
  std::vector<qa::ScoredParagraph> scored;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    for (auto& p : engine.retrieve(sub, pq)) {
      scored.push_back(engine.score(pq, std::move(p)));
    }
  }
  auto accepted = engine.order(std::move(scored));

  auto options = recv_options(4, 3);
  options.failures = {FailureSpec{2, 1}};
  const auto parallel =
      parallel_answer_processing(engine, pq, accepted, pool, options);
  ASSERT_EQ(parallel.answers.size(), sequential.answers.size());
  for (std::size_t i = 0; i < parallel.answers.size(); ++i) {
    EXPECT_EQ(parallel.answers[i].candidate, sequential.answers[i].candidate);
  }
}

}  // namespace
}  // namespace qadist::parallel
