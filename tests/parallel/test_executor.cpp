#include "parallel/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace qadist::parallel {
namespace {

class ExecutorTest : public ::testing::TestWithParam<Strategy> {
 protected:
  ThreadPool pool_{4};
  PartitionedExecutor executor_{pool_};
};

TEST_P(ExecutorTest, EveryItemProcessedExactlyOnce) {
  const std::size_t n = 237;
  std::vector<std::atomic<int>> hits(n);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 4;
  options.chunk_size = 10;
  const auto report = executor_.run(
      n, options, [&](std::size_t item, std::size_t) { ++hits[item]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(report.surviving_workers, 4u);
  EXPECT_EQ(std::accumulate(report.items_per_worker.begin(),
                            report.items_per_worker.end(), std::size_t{0}),
            n);
}

TEST_P(ExecutorTest, ZeroItemsIsFine) {
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 3;
  int calls = 0;
  executor_.run(0, options, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_P(ExecutorTest, MoreWorkersThanItems) {
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 4;
  options.chunk_size = 1;
  std::vector<std::atomic<int>> hits(2);
  executor_.run(2, options,
                [&](std::size_t item, std::size_t) { ++hits[item]; });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST_P(ExecutorTest, SingleWorkerFailureRecovers) {
  const std::size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 4;
  options.chunk_size = 7;
  options.failures = {FailureSpec{1, 5}};  // worker 1 dies after 5 items
  const auto report = executor_.run(
      n, options, [&](std::size_t item, std::size_t) { ++hits[item]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  if (GetParam() == Strategy::kRecv) {
    // Self-scheduling: a fast peer may drain the chunk set before worker 1
    // reaches its failure threshold, in which case it survives untouched.
    EXPECT_GE(report.surviving_workers, 3u);
    EXPECT_LE(report.items_per_worker[1], 5u);
  } else {
    // Sender-controlled dispatch always hands worker 1 a partition, so it
    // deterministically dies after exactly 5 items.
    EXPECT_EQ(report.surviving_workers, 3u);
    EXPECT_EQ(report.items_per_worker[1], 5u);
  }
}

TEST_P(ExecutorTest, MultipleFailuresRecover) {
  const std::size_t n = 80;
  std::vector<std::atomic<int>> hits(n);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 4;
  options.chunk_size = 5;
  options.failures = {FailureSpec{0, 3}, FailureSpec{2, 10}};
  const auto report = executor_.run(
      n, options, [&](std::size_t item, std::size_t) { ++hits[item]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  if (GetParam() == Strategy::kRecv) {
    EXPECT_GE(report.surviving_workers, 2u);
  } else {
    EXPECT_EQ(report.surviving_workers, 2u);
  }
}

TEST_P(ExecutorTest, ImmediateFailureStillCompletes) {
  const std::size_t n = 30;
  std::vector<std::atomic<int>> hits(n);
  ExecutorOptions options;
  options.strategy = GetParam();
  options.workers = 2;
  options.chunk_size = 4;
  options.failures = {FailureSpec{0, 0}};  // dies before any item
  executor_.run(n, options,
                [&](std::size_t item, std::size_t) { ++hits[item]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ExecutorTest,
                         ::testing::Values(Strategy::kSend, Strategy::kIsend,
                                           Strategy::kRecv),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ExecutorWeightsTest, WeightedSendSkewsLoad) {
  ThreadPool pool(4);
  PartitionedExecutor executor(pool);
  ExecutorOptions options;
  options.strategy = Strategy::kSend;
  options.workers = 2;
  options.weights = {3.0, 1.0};
  const auto report =
      executor.run(100, options, [](std::size_t, std::size_t) {});
  EXPECT_EQ(report.items_per_worker[0], 75u);
  EXPECT_EQ(report.items_per_worker[1], 25u);
}

TEST(ExecutorRecvTest, WorkersCompeteForChunks) {
  ThreadPool pool(4);
  PartitionedExecutor executor(pool);
  ExecutorOptions options;
  options.strategy = Strategy::kRecv;
  options.workers = 4;
  options.chunk_size = 1;
  // Uneven costs: item 0 is huge, the rest tiny. RECV should let the other
  // workers absorb the tail while one worker is stuck on item 0.
  std::atomic<int> done{0};
  std::atomic<std::size_t> blocked_worker{SIZE_MAX};
  const auto report = executor.run(40, options,
                                   [&](std::size_t item, std::size_t worker) {
                                     if (item == 0) {
                                       blocked_worker.store(worker);
                                       while (done.load() < 39) {
                                       }
                                     } else {
                                       done.fetch_add(1);
                                     }
                                   });
  // The worker stuck on item 0 processed exactly that one item; the peers
  // self-scheduled the whole tail around it.
  ASSERT_NE(blocked_worker.load(), SIZE_MAX);
  EXPECT_EQ(report.items_per_worker[blocked_worker.load()], 1u);
}

TEST(ExecutorReportTest, SenderRecoveryTakesExtraRounds) {
  ThreadPool pool(2);
  PartitionedExecutor executor(pool);
  ExecutorOptions options;
  options.strategy = Strategy::kSend;
  options.workers = 2;
  options.failures = {FailureSpec{0, 2}};
  const auto report =
      executor.run(20, options, [](std::size_t, std::size_t) {});
  EXPECT_GE(report.rounds, 2u);
}

}  // namespace
}  // namespace qadist::parallel
