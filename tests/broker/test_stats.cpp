// Per-shard term statistics: extraction matches the index it came from,
// the binary form round-trips exactly (it is the QASS v2 stats section),
// and corrupt or truncated bytes die loudly instead of returning a
// quietly wrong resource description.

#include "ir/shard_stats.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ir/inverted_index.hpp"

namespace qadist::ir {
namespace {

// One shard with fully known statistics after analysis: "amsen" in one
// paragraph (tf 2), "quartz" in both paragraphs (tf 1 each).
InvertedIndex known_shard() {
  corpus::Collection c;
  corpus::Document d;
  d.id = 0;
  d.title = "doc";
  d.paragraphs = {"amsen quartz amsen", "quartz"};
  c.add(std::move(d));
  const corpus::SubCollection sub(&c, 0, 1);
  Analyzer analyzer;
  return InvertedIndex::build(sub, analyzer);
}

std::string serialized(const ShardTermStats& stats) {
  std::ostringstream out;
  save_term_stats(stats, out);
  return std::move(out).str();
}

TEST(ShardTermStatsTest, ExtractionMatchesTheIndex) {
  const auto index = known_shard();
  const auto stats = extract_term_stats(index);
  EXPECT_EQ(stats.paragraphs, 2u);
  EXPECT_EQ(stats.words, 4u);  // tf: amsen 2 + quartz 1 + quartz 1
  ASSERT_EQ(stats.df.size(), 2u);
  EXPECT_EQ(stats.df.at("amsen"), 1u);   // one paragraph contains it
  EXPECT_EQ(stats.df.at("quartz"), 2u);  // both paragraphs contain it
}

TEST(ShardTermStatsTest, SaveLoadRoundTripsExactly) {
  const auto stats = extract_term_stats(known_shard());
  std::istringstream in(serialized(stats));
  const auto loaded = load_term_stats(in);
  EXPECT_EQ(loaded, stats);
}

TEST(ShardTermStatsTest, EmptyStatsRoundTrip) {
  const ShardTermStats empty;
  std::istringstream in(serialized(empty));
  const auto loaded = load_term_stats(in);
  EXPECT_EQ(loaded, empty);
}

TEST(ShardTermStatsTest, ByteStreamIsCanonical) {
  // Same logical stats serialized twice -> identical bytes (terms are
  // sorted on the way out, whatever the hash map's iteration order).
  const auto stats = extract_term_stats(known_shard());
  EXPECT_EQ(serialized(stats), serialized(stats));
  ShardTermStats rebuilt;
  rebuilt.paragraphs = stats.paragraphs;
  rebuilt.words = stats.words;
  rebuilt.df.emplace("quartz", 2u);  // reversed insertion order
  rebuilt.df.emplace("amsen", 1u);
  EXPECT_EQ(serialized(rebuilt), serialized(stats));
}

TEST(ShardTermStatsDeathTest, TruncatedStreamDies) {
  const auto bytes = serialized(extract_term_stats(known_shard()));
  ASSERT_GT(bytes.size(), 4u);
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                          std::size_t{3}}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_DEATH((void)load_term_stats(in), "truncated stream");
  }
}

TEST(ShardTermStatsDeathTest, ImpossibleDfDies) {
  // df above the paragraph count can never come from a real index.
  ShardTermStats bad;
  bad.paragraphs = 1;
  bad.words = 10;
  bad.df.emplace("amsen", 5u);
  std::istringstream in(serialized(bad));
  EXPECT_DEATH((void)load_term_stats(in), "corrupt term stats: df");
}

TEST(ShardTermStatsDeathTest, WordCountBelowDfSumDies) {
  ShardTermStats bad;
  bad.paragraphs = 4;
  bad.words = 1;  // two terms with df 2 need at least 4 occurrences
  bad.df.emplace("amsen", 2u);
  bad.df.emplace("quartz", 2u);
  std::istringstream in(serialized(bad));
  EXPECT_DEATH((void)load_term_stats(in), "word count");
}

}  // namespace
}  // namespace qadist::ir
