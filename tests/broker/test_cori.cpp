// CORI collection selection: the documented edge cases are load-bearing
// for routing correctness — an empty question or a term absent from every
// shard must not discriminate (all beliefs collapse to the default), a
// top-k at or above the shard count must be exhaustive search exactly,
// and every tie-break must be deterministic (ascending shard id) so runs
// replay bit-identically.

#include "broker/cori.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "broker/stats.hpp"
#include "ir/inverted_index.hpp"
#include "ir/shard_stats.hpp"

namespace qadist::broker {
namespace {

// Four one-document shards with mostly disjoint vocabulary: "amsen" only
// in shard 0, "lighthouse" in shards 0 and 1, "harbor" in every shard.
corpus::Collection four_shard_collection() {
  corpus::Collection c;
  const std::vector<std::vector<std::string>> paragraphs = {
      {"amsen lighthouse harbor", "amsen amsen harbor"},
      {"lighthouse harbor keepers"},
      {"harbor ships cargo"},
      {"harbor fishing nets", "fishing village"},
  };
  for (std::size_t i = 0; i < paragraphs.size(); ++i) {
    corpus::Document d;
    d.id = static_cast<std::uint32_t>(i);
    d.title = "doc";
    d.paragraphs = paragraphs[i];
    c.add(std::move(d));
  }
  return c;
}

CollectionStats four_shard_stats() {
  const auto c = four_shard_collection();
  ir::Analyzer analyzer;
  std::vector<ir::InvertedIndex> shards;
  for (std::size_t i = 0; i < 4; ++i) {
    shards.push_back(
        ir::InvertedIndex::build(corpus::SubCollection(&c, i, i + 1),
                                 analyzer));
  }
  return CollectionStats::from_indexes(shards);
}

TEST(CoriTest, EmptyQuestionScoresEveryShardAtTheDefaultBelief) {
  const auto stats = four_shard_stats();
  const auto scores = score_shards(stats, {});
  ASSERT_EQ(scores.size(), 4u);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, kCoriDefaultBelief);
}

TEST(CoriTest, TermAbsentFromEveryShardCannotDiscriminate) {
  const auto stats = four_shard_stats();
  EXPECT_EQ(stats.shards_containing("zeppelin"), 0u);
  const std::vector<std::string> keywords = {"zeppelin"};
  const auto scores = score_shards(stats, keywords);
  ASSERT_EQ(scores.size(), 4u);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, kCoriDefaultBelief);
}

TEST(CoriTest, DiscriminativeTermRanksItsShardFirst) {
  const auto stats = four_shard_stats();
  const std::vector<std::string> keywords = {"amsen"};
  const auto scores = score_shards(stats, keywords);
  ASSERT_EQ(scores.size(), 4u);
  // Only shard 0 contains "amsen": it scores above the default belief,
  // everything else sits exactly at it.
  EXPECT_GT(scores[0], kCoriDefaultBelief);
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(scores[s], kCoriDefaultBelief);
  }
  EXPECT_EQ(select_shards(stats, keywords, 1),
            (std::vector<std::size_t>{0}));
}

TEST(CoriTest, WiderSpreadTermScoresItsHoldersAboveNonHolders) {
  const auto stats = four_shard_stats();
  EXPECT_EQ(stats.shards_containing("lighthouse"), 2u);
  const std::vector<std::string> keywords = {"lighthouse"};
  const auto scores = score_shards(stats, keywords);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[3]);
  const auto picked = select_shards(stats, keywords, 2);
  EXPECT_EQ(picked, (std::vector<std::size_t>{0, 1}));
}

TEST(CoriTest, TopKAtOrAboveShardCountIsExhaustiveSearch) {
  const auto stats = four_shard_stats();
  const std::vector<std::string> keywords = {"amsen"};
  const std::vector<std::size_t> all = {0, 1, 2, 3};
  EXPECT_EQ(select_shards(stats, keywords, 4), all);
  EXPECT_EQ(select_shards(stats, keywords, 100), all);
}

TEST(CoriTest, TopKClampsUpToOneSoRoutingIsNeverEmpty) {
  const auto stats = four_shard_stats();
  const std::vector<std::string> keywords = {"amsen"};
  EXPECT_EQ(select_shards(stats, keywords, 0),
            (std::vector<std::size_t>{0}));
}

TEST(CoriTest, TiesBreakByAscendingShardId) {
  const auto stats = four_shard_stats();
  // No evidence at all: every shard scores the default belief, so top-2
  // must deterministically be the two lowest ids.
  EXPECT_EQ(select_shards(stats, {}, 2), (std::vector<std::size_t>{0, 1}));
}

TEST(CoriTest, SingleShardCollectionAlwaysSelectsIt) {
  const auto c = four_shard_collection();
  ir::Analyzer analyzer;
  std::vector<ir::InvertedIndex> shards;
  shards.push_back(
      ir::InvertedIndex::build(corpus::SubCollection(&c, 0, 4), analyzer));
  const auto stats = CollectionStats::from_indexes(shards);
  ASSERT_EQ(stats.num_shards(), 1u);
  const std::vector<std::string> keywords = {"harbor"};
  EXPECT_EQ(select_shards(stats, keywords, 1),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(select_shards(stats, keywords, 8),
            (std::vector<std::size_t>{0}));
}

TEST(CoriTest, FromShardStatsScoresExactlyLikeFromIndexes) {
  // A broker scoring from a loaded QASS v2 stats section must agree
  // bit-for-bit with one scoring from the live indexes.
  const auto c = four_shard_collection();
  ir::Analyzer analyzer;
  std::vector<ir::InvertedIndex> shards;
  std::vector<ir::ShardTermStats> extracted;
  for (std::size_t i = 0; i < 4; ++i) {
    shards.push_back(
        ir::InvertedIndex::build(corpus::SubCollection(&c, i, i + 1),
                                 analyzer));
    extracted.push_back(ir::extract_term_stats(shards.back()));
  }
  const auto live = CollectionStats::from_indexes(shards);
  const auto loaded = CollectionStats::from_shard_stats(std::move(extracted));
  const std::vector<std::string> keywords = {"lighthouse", "harbor"};
  const auto a = score_shards(live, keywords);
  const auto b = score_shards(loaded, keywords);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) EXPECT_DOUBLE_EQ(a[s], b[s]);
}

TEST(CoriTest, CollectionStatsSummaries) {
  const auto stats = four_shard_stats();
  EXPECT_EQ(stats.num_shards(), 4u);
  EXPECT_EQ(stats.shards_containing("harbor"), 4u);
  EXPECT_EQ(stats.shards_containing("amsen"), 1u);
  EXPECT_GT(stats.average_words(), 0.0);
  // avg_cw is the mean of the per-shard word totals.
  double total = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    total += static_cast<double>(stats.shard(s).words);
  }
  EXPECT_DOUBLE_EQ(stats.average_words(), total / 4.0);
}

TEST(CoriWorkProxyTest, RanksByWorkWithAscendingIdTies) {
  const std::vector<double> work = {1.0, 5.0, 3.0, 5.0};
  // Top-2 by weight: shards 1 and 3 (tied at 5.0), ascending order.
  EXPECT_EQ(select_shards_by_work(work, 2),
            (std::vector<std::size_t>{1, 3}));
  // Top-1 of the tie goes to the lower id.
  EXPECT_EQ(select_shards_by_work(work, 1), (std::vector<std::size_t>{1}));
  // k >= n keeps everything; k = 0 clamps up to 1.
  EXPECT_EQ(select_shards_by_work(work, 9),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(select_shards_by_work(work, 0), (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace qadist::broker
