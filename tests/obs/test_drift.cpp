#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model/predictions.hpp"
#include "obs/drift.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace qadist::obs {
namespace {

model::StagePrediction sample_prediction() {
  model::StagePrediction p;
  p.qp = 1.0;
  p.pr = 10.0;
  p.ps = 2.0;
  p.po = 0.5;
  p.ap = 20.0;
  return p;
}

/// One window whose five stage means are `scale` times the prediction.
TimeWindow scaled_window(const model::StagePrediction& p, double scale,
                         double start, std::size_t count = 3) {
  TimeWindow w;
  w.start = start;
  w.end = start + 10.0;
  w.stages = {
      StageWindowStat{"QP", count, p.qp * scale},
      StageWindowStat{"PR", count, p.pr * scale},
      StageWindowStat{"PS", count, p.ps * scale},
      StageWindowStat{"PO", count, p.po * scale},
      StageWindowStat{"AP", count, p.ap * scale},
  };
  return w;
}

TEST(DriftTest, MatchingMeasurementsStayQuiet) {
  const auto p = sample_prediction();
  const std::vector<TimeWindow> windows = {
      scaled_window(p, 1.0, 0.0), scaled_window(p, 1.1, 10.0),
      scaled_window(p, 0.9, 20.0)};
  const DriftReport report = detect_drift(windows, p);
  EXPECT_FALSE(report.flagged);
  EXPECT_EQ(report.first_flagged_window, -1);
  ASSERT_EQ(report.overall.size(), 5u);
  for (const StageDrift& d : report.overall) {
    EXPECT_TRUE(d.judged);
    EXPECT_FALSE(d.flagged) << d.stage;
  }
}

TEST(DriftTest, FlagsSlowdownInItsWindow) {
  const auto p = sample_prediction();
  // Window 1 runs 2x slow — past the 1 + 0.9 slow tolerance.
  const std::vector<TimeWindow> windows = {
      scaled_window(p, 1.0, 0.0), scaled_window(p, 2.0, 10.0),
      scaled_window(p, 1.0, 20.0)};
  const DriftReport report = detect_drift(windows, p);
  EXPECT_TRUE(report.flagged);
  EXPECT_EQ(report.first_flagged_window, 1);
  EXPECT_FALSE(report.windows[0].flagged);
  EXPECT_TRUE(report.windows[1].flagged);
  EXPECT_FALSE(report.windows[2].flagged);
}

TEST(DriftTest, FastSideIsAsymmetricallyWide) {
  const auto p = sample_prediction();
  // 0.3x prediction: above 1/(1+3.0) = 0.25, so legitimately-fast windows
  // (small questions) do not alarm.
  const DriftReport fast =
      detect_drift({scaled_window(p, 0.3, 0.0)}, p);
  EXPECT_FALSE(fast.flagged);
  // 0.2x is below the floor — a genuinely broken measurement.
  const DriftReport too_fast =
      detect_drift({scaled_window(p, 0.2, 0.0)}, p);
  EXPECT_TRUE(too_fast.flagged);
}

TEST(DriftTest, ThinWindowsAreNotJudged) {
  const auto p = sample_prediction();
  // One sample per stage (min_samples = 2): even a 10x blowup stays
  // unjudged rather than alarming on a single question.
  const DriftReport report =
      detect_drift({scaled_window(p, 10.0, 0.0, /*count=*/1)}, p);
  EXPECT_FALSE(report.flagged);
  for (const StageDrift& d : report.overall) {
    EXPECT_FALSE(d.judged) << d.stage;
  }
}

TEST(DriftTest, CalibrationAbsorbsSystematicModelError) {
  const auto p = sample_prediction();
  // The "measured" system runs a steady 1.6x over the raw analytical
  // prediction — Table-10-style systematic model error, which the raw
  // config would flag.
  const std::vector<TimeWindow> reference = {
      scaled_window(p, 1.6, 0.0), scaled_window(p, 1.6, 10.0)};
  EXPECT_FALSE(detect_drift(reference, p).flagged)
      << "1.6x alone is within the slow tolerance";

  const model::StagePrediction calibrated = calibrate_prediction(reference, p);
  EXPECT_NEAR(calibrated.pr, p.pr * 1.6, 1e-9);

  // Against the calibrated baseline the same behavior is ratio 1.0...
  const DriftReport quiet = detect_drift(reference, calibrated);
  EXPECT_FALSE(quiet.flagged);
  for (const StageDrift& d : quiet.overall) {
    EXPECT_NEAR(d.ratio, 1.0, 1e-9);
  }
  // ...and a later 2x service-time perturbation on the *measured* scale is
  // caught within its window.
  const std::vector<TimeWindow> perturbed = {
      scaled_window(p, 1.6, 0.0), scaled_window(p, 3.2, 10.0)};
  const DriftReport flagged = detect_drift(perturbed, calibrated);
  EXPECT_TRUE(flagged.flagged);
  EXPECT_EQ(flagged.first_flagged_window, 1);
}

TEST(DriftTest, PublishesGaugesAndRenders) {
  const auto p = sample_prediction();
  const DriftReport report =
      detect_drift({scaled_window(p, 2.0, 0.0)}, p);
  ASSERT_TRUE(report.flagged);

  MetricsRegistry registry;
  publish_drift(report, registry);
  EXPECT_DOUBLE_EQ(registry.gauge("model_drift_flagged").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("model_drift_flagged_windows").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("model_drift_ratio", {{"stage", "QP"}}).value(), 2.0);

  const std::string text = render_drift(report);
  EXPECT_NE(text.find("DRIFT"), std::string::npos);
  EXPECT_NE(text.find("FLAGGED"), std::string::npos);

  const DriftReport quiet = detect_drift({scaled_window(p, 1.0, 0.0)}, p);
  EXPECT_NE(render_drift(quiet).find("drift verdict: ok"), std::string::npos);
}

}  // namespace
}  // namespace qadist::obs
