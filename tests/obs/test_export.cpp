#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/plan.hpp"
#include "cluster/system.hpp"
#include "cluster/trace.hpp"
#include "obs/span.hpp"
#include "support/mini_json.hpp"
#include "support/test_world.hpp"

namespace qadist::obs {
namespace {

using qadist::testing::parse_json;
using qadist::testing::test_world;

/// One traced 2-node run shared by the golden-file tests (plan building
/// runs the real Q/A pipeline, so do it once).
struct TracedRun {
  Tracer tracer;
  cluster::TraceRecorder text_trace;
  std::size_t questions = 0;
  Seconds makespan = 0.0;
};

const TracedRun& traced_run() {
  static TracedRun* run = [] {
    auto* r = new TracedRun;
    const auto& world = test_world();
    const auto cost = cluster::CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    static std::vector<cluster::QuestionPlan> plans;
    for (std::size_t i = 0; i < 3; ++i) {
      plans.push_back(cluster::make_plan(*world.engine, cost,
                                         world.questions[i]));
    }
    simnet::Simulation sim;
    cluster::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.partition.ap_chunk = 8;
    cluster::System system(sim, cfg);
    system.set_trace(&r->text_trace);
    system.set_tracer(&r->tracer);
    Seconds at = 0.0;
    for (const auto& plan : plans) {
      system.submit(plan, at);
      at += 5.0;
    }
    const auto metrics = system.run();
    r->questions = metrics.completed;
    r->makespan = metrics.makespan;
    return r;
  }();
  return *run;
}

TEST(TracedSystemRun, EverySpanClosesAndEveryStageIsCovered) {
  const TracedRun& run = traced_run();
  ASSERT_EQ(run.questions, 3u);
  EXPECT_EQ(run.tracer.open_spans(), 0u);
  // At least one span per stage per question (PS is per PR unit, so >=).
  for (const char* stage : {"question", "QP", "PR", "PS", "PO", "AP"}) {
    EXPECT_GE(run.tracer.count_spans(stage), run.questions)
        << "missing spans for stage " << stage;
  }
  // The text view rendered the same stream (one event source).
  const std::string text = run.text_trace.render();
  EXPECT_NE(text.find("started question"), std::string::npos);
  EXPECT_NE(text.find("answered question"), std::string::npos);
}

TEST(TracedSystemRun, ChromeTraceIsValidAndTimeOrdered) {
  const TracedRun& run = traced_run();
  std::ostringstream os;
  write_chrome_trace(run.tracer, os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value()) << "Chrome trace is not valid JSON";
  const auto& events = doc->at("traceEvents").items();

  std::size_t spans = 0;
  std::size_t metadata = 0;
  std::map<std::string, std::size_t> by_name;
  std::map<std::pair<double, double>, double> last_ts;  // (pid,tid) -> ts
  for (const auto& ev : events) {
    const std::string ph = ev.at("ph").string;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "X") {
      ++spans;
      ++by_name[ev.at("name").string];
      EXPECT_GE(ev.at("dur").number, 0.0);
    }
    const auto key = std::make_pair(ev.at("pid").number, ev.at("tid").number);
    const double ts = ev.at("ts").number;
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regress on pid/tid track";
      it->second = ts;
    } else {
      last_ts.emplace(key, ts);
    }
  }
  EXPECT_EQ(metadata, 2u);  // one process_name per node
  // All spans closed, so every span record became a complete event.
  EXPECT_EQ(spans, run.tracer.spans().size());
  for (const char* stage : {"question", "QP", "PR", "PS", "PO", "AP"}) {
    EXPECT_GE(by_name[stage], run.questions) << stage;
  }
  const std::size_t expected = run.tracer.spans().size() +
                               run.tracer.instants().size() +
                               run.tracer.counter_samples().size() + metadata;
  EXPECT_EQ(events.size(), expected);
}

TEST(TracedSystemRun, JsonlEveryLineParses) {
  const TracedRun& run = traced_run();
  std::ostringstream os;
  write_jsonl(run.tracer, os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t count = 0;
  double prev_time = 0.0;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << "bad JSONL line: " << line;
    const std::string type = doc->at("type").string;
    EXPECT_TRUE(type == "span" || type == "instant" || type == "counter");
    const double time = type == "span" ? doc->at("start").number
                                       : doc->at("time").number;
    EXPECT_GE(time, prev_time) << "JSONL not time-sorted";
    prev_time = time;
    ++count;
  }
  EXPECT_EQ(count, run.tracer.spans().size() + run.tracer.instants().size() +
                       run.tracer.counter_samples().size());
}

TEST(TracedSystemRun, FileExportsRoundTrip) {
  const TracedRun& run = traced_run();
  const std::string dir = ::testing::TempDir();
  const std::string chrome = dir + "/qadist_trace.chrome.json";
  const std::string jsonl = dir + "/qadist_trace.jsonl";
  ASSERT_TRUE(export_chrome_trace_file(run.tracer, chrome));
  ASSERT_TRUE(export_jsonl_file(run.tracer, jsonl));
  std::ifstream in(chrome);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(parse_json(buf.str()).has_value());
}

TEST(TracedSystemRun, TracingDoesNotChangeSimulatedResults) {
  // Same workload without any tracer attached: simulated time must be
  // bit-identical (observation is passive).
  const auto& world = test_world();
  const auto cost = cluster::CostModel::calibrate(
      *world.engine,
      std::span<const corpus::Question>(world.questions).subspan(0, 8));
  std::vector<cluster::QuestionPlan> plans;
  for (std::size_t i = 0; i < 3; ++i) {
    plans.push_back(
        cluster::make_plan(*world.engine, cost, world.questions[i]));
  }
  simnet::Simulation sim;
  cluster::SystemConfig cfg;
  cfg.nodes = 2;
  cfg.partition.ap_chunk = 8;
  cluster::System system(sim, cfg);
  Seconds at = 0.0;
  for (const auto& plan : plans) {
    system.submit(plan, at);
    at += 5.0;
  }
  const auto metrics = system.run();
  EXPECT_DOUBLE_EQ(metrics.makespan, traced_run().makespan);
}

TEST(ChromeTraceExport, OpenSpansAreSkipped) {
  Tracer tracer;
  const auto track = tracer.new_track();
  tracer.begin_span(0.0, "open", 0, track);
  const SpanId closed = tracer.begin_span(1.0, "closed", 0, track);
  tracer.end_span(closed, 2.0);
  std::ostringstream os;
  write_chrome_trace(tracer, os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  std::size_t complete = 0;
  for (const auto& ev : doc->at("traceEvents").items()) {
    if (ev.at("ph").string == "X") {
      ++complete;
      EXPECT_EQ(ev.at("name").string, "closed");
    }
  }
  EXPECT_EQ(complete, 1u);
}

TEST(MetricsJsonExport, WritesRegistrySnapshot) {
  MetricsRegistry reg;
  reg.counter("questions_completed").inc(3.0);
  std::ostringstream os;
  write_metrics_json(reg, os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("counters").items().size(), 1u);
}

}  // namespace
}  // namespace qadist::obs
