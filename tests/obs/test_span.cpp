#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qadist::obs {
namespace {

TEST(Tracer, SpanLifecycle) {
  Tracer tracer;
  const auto track = tracer.new_track();
  const SpanId parent = tracer.begin_span(1.0, "question", 0, track);
  const SpanId child =
      tracer.begin_span(1.5, "QP", 0, track, parent, {{"k", std::int64_t{7}}});
  EXPECT_EQ(tracer.open_spans(), 2u);

  tracer.end_span(child, 2.0);
  tracer.end_span(parent, 3.0, {{"latency_seconds", 2.0}});
  EXPECT_EQ(tracer.open_spans(), 0u);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& q = tracer.spans()[0];
  const SpanRecord& qp = tracer.spans()[1];
  EXPECT_EQ(q.name, "question");
  EXPECT_TRUE(q.closed);
  EXPECT_DOUBLE_EQ(q.start, 1.0);
  EXPECT_DOUBLE_EQ(q.end, 3.0);
  EXPECT_EQ(qp.parent, q.id);
  EXPECT_EQ(qp.track, q.track);
  // end_span appended the extra attr.
  ASSERT_EQ(q.attrs.size(), 1u);
  EXPECT_EQ(q.attrs[0].first, "latency_seconds");
}

TEST(Tracer, NestedSpansOrderedWithinTrack) {
  // A question span with sequential stage children: children start after
  // the parent and close before it, in submission order.
  Tracer tracer;
  const auto track = tracer.new_track();
  const SpanId q = tracer.begin_span(0.0, "question", 0, track);
  double t = 0.0;
  for (const char* stage : {"QP", "PR", "PO", "AP"}) {
    const SpanId s = tracer.begin_span(t, stage, 0, track, q);
    t += 1.0;
    tracer.end_span(s, t);
  }
  tracer.end_span(q, t);

  ASSERT_EQ(tracer.spans().size(), 5u);
  double prev_start = -1.0;
  for (std::size_t i = 1; i < tracer.spans().size(); ++i) {
    const SpanRecord& s = tracer.spans()[i];
    EXPECT_EQ(s.parent, q);
    EXPECT_GE(s.start, prev_start);   // stages are sequential
    EXPECT_LE(s.end, t);              // nested inside the parent interval
    EXPECT_GE(s.start, 0.0);
    prev_start = s.start;
  }
  EXPECT_EQ(tracer.count_spans("question"), 1u);
  EXPECT_EQ(tracer.count_spans("QP"), 1u);
  EXPECT_EQ(tracer.count_spans("missing"), 0u);
}

TEST(Tracer, TracksAreDistinct) {
  Tracer tracer;
  const auto a = tracer.new_track();
  const auto b = tracer.new_track();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);  // track 0 is reserved for per-node instants
}

TEST(TracerDeathTest, EndBeforeStartPanics) {
  Tracer tracer;
  const SpanId s = tracer.begin_span(5.0, "x", 0, tracer.new_track());
  EXPECT_DEATH(tracer.end_span(s, 4.0), "");
}

TEST(TracerDeathTest, DoubleClosePanics) {
  Tracer tracer;
  const SpanId s = tracer.begin_span(0.0, "x", 0, tracer.new_track());
  tracer.end_span(s, 1.0);
  EXPECT_DEATH(tracer.end_span(s, 2.0), "");
}

class CollectingSink : public TextSink {
 public:
  void on_text(Seconds time, std::uint32_t node,
               const std::string& text) override {
    lines.push_back(std::to_string(node) + ": " + text);
    times.push_back(time);
  }
  std::vector<std::string> lines;
  std::vector<Seconds> times;
};

TEST(Tracer, InstantForwardsToTextSink) {
  Tracer tracer;
  CollectingSink sink;
  tracer.set_text_sink(&sink);
  tracer.instant(2.5, 1, "crashed", {{"kind", std::string("crash")}});
  tracer.instant(3.0, 0, "recovered");

  ASSERT_EQ(tracer.instants().size(), 2u);
  ASSERT_EQ(sink.lines.size(), 2u);
  EXPECT_EQ(sink.lines[0], "1: crashed");
  EXPECT_DOUBLE_EQ(sink.times[0], 2.5);
  EXPECT_EQ(tracer.instants()[0].attrs.size(), 1u);
}

TEST(Tracer, CounterSamples) {
  Tracer tracer;
  tracer.counter_sample(1.0, 0, "cpu_util", 0.5);
  tracer.counter_sample(2.0, 0, "cpu_util", 0.8);
  ASSERT_EQ(tracer.counter_samples().size(), 2u);
  EXPECT_EQ(tracer.counter_samples()[1].name, "cpu_util");
  EXPECT_DOUBLE_EQ(tracer.counter_samples()[1].value, 0.8);
}

}  // namespace
}  // namespace qadist::obs
