#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "support/mini_json.hpp"

namespace qadist::obs {
namespace {

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("questions");
  Counter& b = reg.counter("questions");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2.0);
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  Counter& qa = reg.counter("migrations", {{"stage", "qa"}});
  Counter& pr = reg.counter("migrations", {{"stage", "pr"}});
  EXPECT_NE(&qa, &pr);
  qa.inc();
  EXPECT_DOUBLE_EQ(qa.value(), 1.0);
  EXPECT_DOUBLE_EQ(pr.value(), 0.0);
  EXPECT_EQ(reg.counters().size(), 2u);
}

TEST(MetricsRegistry, LabelOrderIsNormalized) {
  MetricsRegistry reg;
  Counter& a = reg.counter("c", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("c", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  // And the stored labels come back key-sorted.
  ASSERT_EQ(a.labels().size(), 2u);
  EXPECT_EQ(a.labels()[0].first, "a");
  EXPECT_EQ(a.labels()[1].first, "b");
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("load", {{"node", "0"}});
  g.set(0.5);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);

  HistogramMetric& h = reg.histogram("latency");
  h.observe(1.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.samples().quantile(1.0), 3.0);
}

TEST(MetricsRegistryDeathTest, RejectsSameNameDifferentKind) {
  MetricsRegistry reg;
  reg.counter("questions");
  EXPECT_DEATH(reg.gauge("questions"), "");
  EXPECT_DEATH(reg.histogram("questions"), "");
}

TEST(MetricsRegistryDeathTest, RejectsDuplicateLabelKeys) {
  MetricsRegistry reg;
  EXPECT_DEATH(reg.counter("c", {{"k", "1"}, {"k", "2"}}), "");
}

TEST(MetricsRegistry, CounterRejectsNegativeDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  EXPECT_DEATH(c.inc(-1.0), "");
}

TEST(MetricsRegistry, PointersSurviveGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
  }
  first.inc();  // must still be valid storage
  EXPECT_DOUBLE_EQ(reg.counter("first").value(), 1.0);
}

TEST(MetricsRegistry, ToJsonParsesBack) {
  MetricsRegistry reg;
  reg.counter("questions").inc(5.0);
  reg.gauge("makespan", {{"run", "a"}}).set(12.5);
  HistogramMetric& h = reg.histogram("latency");
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.observe(x);
  reg.histogram("empty_series");  // registered but never observed

  const auto doc = testing::parse_json(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("counters").items().size(), 1u);
  EXPECT_EQ(doc->at("gauges").items().size(), 1u);
  EXPECT_EQ(doc->at("histograms").items().size(), 2u);

  const auto& counter = doc->at("counters").items()[0];
  EXPECT_EQ(counter.at("name").string, "questions");
  EXPECT_DOUBLE_EQ(counter.at("value").number, 5.0);

  const auto& gauge = doc->at("gauges").items()[0];
  EXPECT_EQ(gauge.at("labels").at("run").string, "a");
  EXPECT_DOUBLE_EQ(gauge.at("value").number, 12.5);

  for (const auto& hist : doc->at("histograms").items()) {
    if (hist.at("name").string != "latency") continue;
    EXPECT_DOUBLE_EQ(hist.at("count").number, 4.0);
    EXPECT_DOUBLE_EQ(hist.at("mean").number, 2.5);
    EXPECT_DOUBLE_EQ(hist.at("max").number, 4.0);
  }
}

}  // namespace
}  // namespace qadist::obs
