#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "support/test_world.hpp"

namespace qadist::obs {
namespace {

// Golden span tree, built by hand so every component is known exactly:
//
//   question [10, 100], latency_seconds = 95  ->  queue wait 5
//     cache lookup [10, 10.5]
//     QP           [10.5, 11.5]
//     (0.5 restart gap -> retry)
//     PR           [12, 40]
//       PR leg A   [12, 30]   net 0.25
//       PR leg B   [13, 38]   net 2.0, backoff 1.5   <- critical (retried)
//         PS       [20, 24]
//       (2.0 gather tail -> merge)
//     (0.5 restart gap -> retry)
//     PO           [40.5, 41]
//     AP           [41, 90]
//       AP leg C   [41, 80]   net 0.5
//       AP leg D   [42, 90]   net 1.0               <- critical
//     (10.0 answer merge tail -> merge)
Tracer golden_tracer() {
  Tracer tracer;
  const auto track = tracer.new_track();
  const SpanId q = tracer.begin_span(10.0, "question", 0, track, kNoSpan,
                                     {{"question", std::int64_t{7}}});
  const SpanId cache = tracer.begin_span(10.0, "cache lookup", 0, track, q);
  tracer.end_span(cache, 10.5);
  const SpanId qp = tracer.begin_span(10.5, "QP", 0, track, q);
  tracer.end_span(qp, 11.5);

  const SpanId pr = tracer.begin_span(12.0, "PR", 0, track, q);
  const SpanId leg_a =
      tracer.begin_span(12.0, "PR leg", 1, tracer.new_track(), pr);
  tracer.end_span(leg_a, 30.0, {{"net_seconds", 0.25}});
  const SpanId leg_b =
      tracer.begin_span(13.0, "PR leg", 2, tracer.new_track(), pr);
  const SpanId ps = tracer.begin_span(20.0, "PS", 2, tracer.new_track(), leg_b);
  tracer.end_span(ps, 24.0);
  tracer.end_span(leg_b, 38.0,
                  {{"net_seconds", 2.0}, {"backoff_seconds", 1.5}});
  tracer.end_span(pr, 40.0);

  const SpanId po = tracer.begin_span(40.5, "PO", 0, track, q);
  tracer.end_span(po, 41.0);

  const SpanId ap = tracer.begin_span(41.0, "AP", 0, track, q);
  const SpanId leg_c =
      tracer.begin_span(41.0, "AP leg", 1, tracer.new_track(), ap);
  tracer.end_span(leg_c, 80.0, {{"net_seconds", 0.5}});
  const SpanId leg_d =
      tracer.begin_span(42.0, "AP leg", 3, tracer.new_track(), ap);
  tracer.end_span(leg_d, 90.0, {{"net_seconds", 1.0}});
  tracer.end_span(ap, 90.0);

  tracer.end_span(q, 100.0,
                  {{"latency_seconds", 95.0},
                   {"restarts", std::int64_t{1}},
                   {"cached", std::int64_t{0}},
                   {"degraded", std::int64_t{1}}});
  return tracer;
}

TEST(CriticalPathTest, GoldenSpanTreeDecomposesExactly) {
  const Tracer tracer = golden_tracer();
  const auto questions = analyze_questions(tracer);
  ASSERT_EQ(questions.size(), 1u);
  const QuestionBreakdown& b = questions.front();

  EXPECT_EQ(b.question, 7);
  EXPECT_EQ(b.restarts, 1);
  EXPECT_FALSE(b.cached);
  EXPECT_TRUE(b.degraded);

  EXPECT_DOUBLE_EQ(b.total, 95.0);
  EXPECT_DOUBLE_EQ(b.queue, 5.0);
  EXPECT_DOUBLE_EQ(b.service.cache_lookup, 0.5);
  EXPECT_DOUBLE_EQ(b.service.qp, 1.0);
  // Critical PR leg: (38 - 13) minus net 2.0, backoff 1.5, PS 4.0.
  EXPECT_DOUBLE_EQ(b.service.pr, 17.5);
  EXPECT_DOUBLE_EQ(b.service.ps, 4.0);
  EXPECT_DOUBLE_EQ(b.service.po, 0.5);
  // Critical AP leg: (90 - 42) minus net 1.0.
  EXPECT_DOUBLE_EQ(b.service.ap, 47.0);
  // Critical legs' wire time only: 2.0 (PR) + 1.0 (AP).
  EXPECT_DOUBLE_EQ(b.network, 3.0);
  // Two 0.5 inter-stage gaps + 1.0 PR spawn delay + 1.5 backoff +
  // 1.0 AP spawn delay.
  EXPECT_DOUBLE_EQ(b.retry, 4.5);
  // 2.0 PR gather tail + 10.0 final answer merge.
  EXPECT_DOUBLE_EQ(b.merge, 12.0);

  EXPECT_DOUBLE_EQ(b.component_sum(), b.total);

  ASSERT_EQ(b.critical_legs.size(), 2u);
  EXPECT_EQ(b.critical_legs[0].stage, "PR");
  EXPECT_EQ(b.critical_legs[0].node, 2u);
  EXPECT_DOUBLE_EQ(b.critical_legs[0].seconds, 25.0);
  EXPECT_EQ(b.critical_legs[1].stage, "AP");
  EXPECT_EQ(b.critical_legs[1].node, 3u);
  EXPECT_DOUBLE_EQ(b.critical_legs[1].seconds, 48.0);
}

TEST(CriticalPathTest, RunAttributionAggregatesAndBlames) {
  const Tracer tracer = golden_tracer();
  const RunAttribution run = attribute_run(tracer);
  EXPECT_EQ(run.questions, 1u);
  EXPECT_EQ(run.cached, 0u);
  EXPECT_EQ(run.degraded, 1u);
  EXPECT_DOUBLE_EQ(run.total, 95.0);
  EXPECT_DOUBLE_EQ(run.share(run.queue), 5.0 / 95.0);
  // Nodes 2 (PR) and 3 (AP) decided the fork-join stages.
  ASSERT_EQ(run.critical_leg_counts.size(), 4u);
  EXPECT_EQ(run.critical_leg_counts[2], 1u);
  EXPECT_EQ(run.critical_leg_counts[3], 1u);
  const std::string rendered = render_attribution(run);
  EXPECT_NE(rendered.find("queue wait"), std::string::npos);
  EXPECT_NE(rendered.find("N3=1"), std::string::npos);
}

TEST(CriticalPathTest, StageWithoutLegsIsSupervisionTime) {
  Tracer tracer;
  const auto track = tracer.new_track();
  const SpanId q = tracer.begin_span(5.0, "question", 0, track);
  const SpanId pr = tracer.begin_span(5.0, "PR", 0, track, q);
  tracer.end_span(pr, 8.0);  // every unit unplaced: no legs
  tracer.end_span(q, 9.0);

  const auto questions = analyze_questions(tracer);
  ASSERT_EQ(questions.size(), 1u);
  const QuestionBreakdown& b = questions.front();
  EXPECT_DOUBLE_EQ(b.total, 4.0);  // falls back to the span duration
  EXPECT_DOUBLE_EQ(b.queue, 0.0);
  EXPECT_DOUBLE_EQ(b.service.total(), 0.0);
  EXPECT_DOUBLE_EQ(b.merge, 4.0);  // 3.0 legless stage + 1.0 tail
  EXPECT_DOUBLE_EQ(b.component_sum(), b.total);
  EXPECT_TRUE(b.critical_legs.empty());
}

TEST(CriticalPathTest, OpenAndForeignSpansAreSkipped) {
  Tracer tracer;
  const auto track = tracer.new_track();
  tracer.begin_span(0.0, "question", 0, track);  // never closed
  const SpanId other = tracer.begin_span(0.0, "heartbeat", 0, track);
  tracer.end_span(other, 1.0);
  EXPECT_TRUE(analyze_questions(tracer).empty());
}

// Property over real simulations, healthy and faulty: the decomposition
// telescopes, so queue + service + network + retry + merge must equal the
// measured latency for every traced question.
TEST(CriticalPathTest, ComponentSumsEqualLatencyOnRealRuns) {
  using cluster::CostModel;
  using cluster::QuestionPlan;
  using cluster::SystemConfig;
  const auto& world = qadist::testing::test_world();
  const auto cost = CostModel::calibrate(
      *world.engine,
      std::span<const corpus::Question>(world.questions).subspan(0, 8));
  std::vector<QuestionPlan> plans;
  for (std::size_t i = 0; i < 12; ++i) {
    plans.push_back(make_plan(*world.engine, cost, world.questions[i]));
  }

  for (const bool lossy : {false, true}) {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 4;
    cfg.partition.ap_chunk = 8;
    cfg.admission.max_concurrent = 4;  // real admission-queue waits
    cfg.admission.queue_capacity = 64;
    if (lossy) {
      cfg.net.faults.drop_probability = 0.05;
      cfg.net.faults.duplicate_probability = 0.02;
      cfg.net.faults.jitter_min = 0.001;
      cfg.net.faults.jitter_max = 0.010;
    }
    cluster::System system(sim, cfg);
    Tracer tracer;
    system.set_tracer(&tracer);
    cluster::OverloadWorkload workload;
    workload.count = 24;
    workload.seed = 7;
    cluster::submit_overload(system, plans, workload);
    [[maybe_unused]] const auto metrics = system.run();

    const auto questions = analyze_questions(tracer);
    ASSERT_FALSE(questions.empty()) << (lossy ? "lossy" : "healthy");
    for (const QuestionBreakdown& b : questions) {
      EXPECT_NEAR(b.component_sum(), b.total,
                  1e-6 * std::max(1.0, b.total))
          << (lossy ? "lossy" : "healthy") << " question " << b.question;
      EXPECT_GE(b.queue, 0.0);
      EXPECT_GE(b.network, 0.0);
      EXPECT_GE(b.retry, 0.0);
      EXPECT_GE(b.merge, 0.0);
    }
  }
}

}  // namespace
}  // namespace qadist::obs
