#include "support/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "support/mini_json.hpp"

namespace qadist::bench {
namespace {

using qadist::testing::parse_json;

TEST(BenchReport, JsonRoundTrip) {
  BenchReport report("unit_test");
  report.config("seeds", std::int64_t{10});
  report.config("protocol", "high-load 2x");
  report.config("scale", 0.5);

  Samples samples;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) samples.add(x);
  report.metric("latency_seconds", {{"nodes", "4"}}, samples, 2.9);
  report.metric("throughput_qpm", {{"nodes", "4"}, {"policy", "DNS"}}, 2.61);

  RunningStats stats;
  stats.add(10.0);
  stats.add(20.0);
  report.metric("overhead_seconds", {}, stats);

  const auto doc = parse_json(report.to_json());
  ASSERT_TRUE(doc.has_value()) << report.to_json();
  EXPECT_EQ(doc->at("schema").string, "qadist-bench-v1");
  EXPECT_EQ(doc->at("bench").string, "unit_test");

  const auto& config = doc->at("config");
  EXPECT_DOUBLE_EQ(config.at("seeds").number, 10.0);
  EXPECT_EQ(config.at("protocol").string, "high-load 2x");
  EXPECT_DOUBLE_EQ(config.at("scale").number, 0.5);

  const auto& metrics = doc->at("metrics").items();
  ASSERT_EQ(metrics.size(), 3u);

  const auto& dist = metrics[0];
  EXPECT_EQ(dist.at("name").string, "latency_seconds");
  EXPECT_EQ(dist.at("labels").at("nodes").string, "4");
  EXPECT_DOUBLE_EQ(dist.at("count").number, 5.0);
  EXPECT_DOUBLE_EQ(dist.at("mean").number, 3.0);
  EXPECT_DOUBLE_EQ(dist.at("max").number, 5.0);
  EXPECT_DOUBLE_EQ(dist.at("paper_expected").number, 2.9);
  EXPECT_GE(dist.at("p95").number, dist.at("p50").number);

  const auto& scalar = metrics[1];
  EXPECT_DOUBLE_EQ(scalar.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(scalar.at("mean").number, 2.61);
  EXPECT_DOUBLE_EQ(scalar.at("p50").number, 2.61);
  EXPECT_DOUBLE_EQ(scalar.at("max").number, 2.61);
  EXPECT_EQ(scalar.at("labels").at("policy").string, "DNS");
  // No paper value was supplied, so the key must be absent entirely.
  EXPECT_EQ(scalar.at("paper_expected").kind,
            testing::JsonValue::Kind::kNull);

  const auto& running = metrics[2];
  EXPECT_DOUBLE_EQ(running.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(running.at("mean").number, 15.0);
  EXPECT_DOUBLE_EQ(running.at("p50").number, 15.0);  // RunningStats: mean
  EXPECT_DOUBLE_EQ(running.at("max").number, 20.0);
}

TEST(BenchReport, OutputPathHonorsResultsDirOverride) {
  BenchReport report("paths");
  ::unsetenv("QADIST_RESULTS_DIR");
  EXPECT_EQ(report.output_path(), "results/BENCH_paths.json");

  ::setenv("QADIST_RESULTS_DIR", "/tmp/qadist_custom", 1);
  EXPECT_EQ(report.output_path(), "/tmp/qadist_custom/BENCH_paths.json");
  ::unsetenv("QADIST_RESULTS_DIR");
}

TEST(BenchReport, WriteCreatesFileThatParses) {
  const std::string dir = ::testing::TempDir() + "/qadist_bench_report";
  ::setenv("QADIST_RESULTS_DIR", dir.c_str(), 1);
  BenchReport report("write_test");
  report.metric("m", {}, 1.5);
  ASSERT_TRUE(report.write());
  ::unsetenv("QADIST_RESULTS_DIR");

  std::ifstream in(dir + "/BENCH_write_test.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = parse_json(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("bench").string, "write_test");
  EXPECT_EQ(doc->at("metrics").items().size(), 1u);
}

}  // namespace
}  // namespace qadist::bench
