#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "support/mini_json.hpp"

namespace qadist::obs {
namespace {

// Two 10 s windows:
//   window 0: two questions end (latencies 4 and 7, one cached), one
//             admission shed, QP span of 1 s, cpu/disk samples on node 0;
//   window 1: one degraded question ends, one admission reject, QP span
//             of 2 s.
Tracer sample_tracer() {
  Tracer tracer;
  const auto track = tracer.new_track();

  const SpanId q1 = tracer.begin_span(1.0, "question", 0, track);
  tracer.end_span(q1, 5.0);  // latency falls back to the 4 s duration
  const SpanId q2 = tracer.begin_span(2.0, "question", 1, track);
  tracer.end_span(q2, 8.0,
                  {{"latency_seconds", 7.0}, {"cached", std::int64_t{1}}});
  const SpanId q3 = tracer.begin_span(12.0, "question", 0, track);
  tracer.end_span(q3, 15.0, {{"degraded", std::int64_t{1}}});

  const SpanId qp1 = tracer.begin_span(1.0, "QP", 0, track);
  tracer.end_span(qp1, 2.0);
  const SpanId qp2 = tracer.begin_span(12.0, "QP", 0, track);
  tracer.end_span(qp2, 14.0);

  tracer.instant(3.0, 0, "question shed",
                 {{"kind", std::string("admission_shed")}});
  tracer.instant(13.0, 0, "question rejected",
                 {{"kind", std::string("admission_reject")}});

  tracer.counter_sample(1.0, 0, "cpu_util", 0.5);
  tracer.counter_sample(4.0, 0, "cpu_util", 0.7);
  tracer.counter_sample(2.0, 0, "disk_util", 0.2);
  return tracer;
}

TEST(TimeseriesTest, RollupBucketsByWindow) {
  const Tracer tracer = sample_tracer();
  const auto windows = rollup(tracer, TimeseriesConfig{10.0});
  ASSERT_EQ(windows.size(), 2u);

  const TimeWindow& w0 = windows[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_DOUBLE_EQ(w0.end, 10.0);
  EXPECT_EQ(w0.completed, 2u);
  EXPECT_DOUBLE_EQ(w0.qps, 0.2);
  EXPECT_DOUBLE_EQ(w0.latency_mean, 5.5);
  EXPECT_GE(w0.latency_p50, 4.0);
  EXPECT_LE(w0.latency_p99, 7.0);
  EXPECT_EQ(w0.cached, 1u);
  EXPECT_EQ(w0.degraded, 0u);
  EXPECT_EQ(w0.shed, 1u);
  EXPECT_EQ(w0.rejected, 0u);
  // (shed + rejected) / (completed + shed + rejected) = 1 / 3.
  EXPECT_DOUBLE_EQ(w0.shed_fraction, 1.0 / 3.0);

  const TimeWindow& w1 = windows[1];
  EXPECT_EQ(w1.completed, 1u);
  EXPECT_EQ(w1.degraded, 1u);
  EXPECT_DOUBLE_EQ(w1.degraded_fraction, 1.0);
  EXPECT_EQ(w1.rejected, 1u);
  EXPECT_DOUBLE_EQ(w1.shed_fraction, 0.5);
}

TEST(TimeseriesTest, StageSeriesAreAlignedAcrossWindows) {
  const Tracer tracer = sample_tracer();
  const auto windows = rollup(tracer, TimeseriesConfig{10.0});
  ASSERT_EQ(windows.size(), 2u);
  for (const TimeWindow& w : windows) {
    // All five stages appear in every window, zero-count when idle —
    // drift detection differences aligned series.
    ASSERT_EQ(w.stages.size(), 5u);
    EXPECT_EQ(w.stages[0].stage, "QP");
  }
  EXPECT_EQ(windows[0].stages[0].count, 1u);
  EXPECT_DOUBLE_EQ(windows[0].stages[0].mean_seconds, 1.0);
  EXPECT_EQ(windows[1].stages[0].count, 1u);
  EXPECT_DOUBLE_EQ(windows[1].stages[0].mean_seconds, 2.0);
  // PR saw no spans anywhere.
  EXPECT_EQ(windows[0].stages[1].stage, "PR");
  EXPECT_EQ(windows[0].stages[1].count, 0u);
}

TEST(TimeseriesTest, NodeUtilizationMeansPerWindow) {
  const Tracer tracer = sample_tracer();
  const auto windows = rollup(tracer, TimeseriesConfig{10.0});
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].nodes.size(), 1u);
  const NodeUtilization& n0 = windows[0].nodes.front();
  EXPECT_EQ(n0.node, 0u);
  EXPECT_DOUBLE_EQ(n0.cpu_util, 0.6);   // mean of 0.5 and 0.7
  EXPECT_DOUBLE_EQ(n0.disk_util, 0.2);
  EXPECT_TRUE(windows[1].nodes.empty());
}

TEST(TimeseriesTest, JsonlLinesParseWithExpectedSchema) {
  const Tracer tracer = sample_tracer();
  const auto windows = rollup(tracer, TimeseriesConfig{10.0});
  std::ostringstream os;
  write_timeseries_jsonl(windows, os);

  std::istringstream lines(os.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto doc = qadist::testing::parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->at("schema").string, "qadist-timeseries-v1");
    EXPECT_TRUE(doc->at("latency").is_object());
    EXPECT_TRUE(doc->at("stages").is_array());
    ++count;
  }
  EXPECT_EQ(count, windows.size());
}

TEST(TimeseriesTest, EmptyTracerYieldsSingleIdleWindow) {
  Tracer tracer;
  const auto windows = rollup(tracer, TimeseriesConfig{10.0});
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].completed, 0u);
  EXPECT_DOUBLE_EQ(windows[0].shed_fraction, 0.0);
}

}  // namespace
}  // namespace qadist::obs
