#include "support/bench_cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qadist::bench {
namespace {

std::optional<BenchCli> parse(std::vector<const char*> args,
                              std::string* error = nullptr) {
  return BenchCli::try_parse(
      std::span<const char* const>(args.data(), args.size()), error);
}

TEST(BenchCliTest, NoArgumentsYieldsAllDefaults) {
  const auto cli = parse({});
  ASSERT_TRUE(cli.has_value());
  EXPECT_FALSE(cli->nodes.has_value());
  EXPECT_FALSE(cli->seed.has_value());
  EXPECT_FALSE(cli->policy.has_value());
  EXPECT_FALSE(cli->strategy.has_value());
  EXPECT_FALSE(cli->out.has_value());
  EXPECT_FALSE(cli->smoke);
  EXPECT_EQ(cli->nodes_or(12), 12u);
  EXPECT_EQ(cli->seed_or(7), 7u);
  EXPECT_EQ(cli->policy_or(cluster::Policy::kDqa), cluster::Policy::kDqa);
}

TEST(BenchCliTest, ParsesSeparateAndAttachedValues) {
  const auto cli = parse({"--nodes", "8", "--seed=42", "--policy", "inter",
                          "--strategy=recv", "--out", "tmp/results",
                          "--smoke"});
  ASSERT_TRUE(cli.has_value());
  EXPECT_EQ(cli->nodes_or(0), 8u);
  EXPECT_EQ(cli->seed_or(0), 42u);
  EXPECT_EQ(cli->policy_or(cluster::Policy::kDns), cluster::Policy::kInter);
  EXPECT_EQ(cli->strategy_or(parallel::Strategy::kSend),
            parallel::Strategy::kRecv);
  EXPECT_EQ(cli->out.value_or(""), "tmp/results");
  EXPECT_TRUE(cli->smoke);
}

TEST(BenchCliTest, PolicyNamesAreCaseAndSeparatorInsensitive) {
  EXPECT_EQ(parse({"--policy", "two_choice"})->policy,
            cluster::Policy::kTwoChoice);
  EXPECT_EQ(parse({"--policy", "TWO-CHOICE"})->policy,
            cluster::Policy::kTwoChoice);
  EXPECT_EQ(parse({"--strategy", "IsEnD"})->strategy,
            parallel::Strategy::kIsend);
}

TEST(BenchCliTest, ParsesDropRate) {
  const auto attached = parse({"--drop-rate=0.05"});
  ASSERT_TRUE(attached.has_value());
  EXPECT_DOUBLE_EQ(attached->drop_rate_or(0.0), 0.05);
  const auto separate = parse({"--drop-rate", "0"});
  ASSERT_TRUE(separate.has_value());
  ASSERT_TRUE(separate->drop_rate.has_value());  // explicit 0, not a default
  EXPECT_DOUBLE_EQ(separate->drop_rate_or(0.5), 0.0);
  EXPECT_DOUBLE_EQ(parse({})->drop_rate_or(0.02), 0.02);
}

TEST(BenchCliTest, ParsesBrokerTierFlags) {
  const auto cli = parse({"--brokers=4", "--selectivity", "0.25"});
  ASSERT_TRUE(cli.has_value());
  EXPECT_EQ(cli->brokers_or(0), 4u);
  EXPECT_DOUBLE_EQ(cli->selectivity_or(1.0), 0.25);
  const auto flat = parse({"--brokers", "0"});
  ASSERT_TRUE(flat.has_value());
  ASSERT_TRUE(flat->brokers.has_value());  // explicit flat star, not a default
  EXPECT_EQ(flat->brokers_or(8), 0u);
  EXPECT_EQ(parse({})->brokers_or(3), 3u);
  EXPECT_DOUBLE_EQ(parse({})->selectivity_or(1.0), 1.0);
}

TEST(BenchCliTest, RejectsBadBrokerTierValues) {
  std::string error;
  EXPECT_FALSE(parse({"--brokers", "-1"}, &error).has_value());
  EXPECT_NE(error.find("--brokers"), std::string::npos);
  EXPECT_FALSE(parse({"--brokers", "many"}, &error).has_value());
  EXPECT_FALSE(parse({"--selectivity", "0"}, &error).has_value());
  EXPECT_NE(error.find("--selectivity"), std::string::npos);
  EXPECT_FALSE(parse({"--selectivity", "1.5"}, &error).has_value());
  EXPECT_FALSE(parse({"--selectivity"}, &error).has_value());
}

TEST(BenchCliTest, RejectsDropRateOutsideUnitInterval) {
  std::string error;
  EXPECT_FALSE(parse({"--drop-rate", "1.5"}, &error).has_value());
  EXPECT_NE(error.find("--drop-rate"), std::string::npos);
  EXPECT_FALSE(parse({"--drop-rate", "-0.1"}, &error).has_value());
  EXPECT_FALSE(parse({"--drop-rate", "lossy"}, &error).has_value());
  EXPECT_FALSE(parse({"--drop-rate", "nan"}, &error).has_value());
  EXPECT_FALSE(parse({"--drop-rate"}, &error).has_value());
}

TEST(BenchCliTest, RejectsBadValuesWithAMessage) {
  std::string error;
  EXPECT_FALSE(parse({"--nodes", "zero"}, &error).has_value());
  EXPECT_NE(error.find("--nodes"), std::string::npos);
  EXPECT_FALSE(parse({"--nodes", "0"}, &error).has_value());
  EXPECT_FALSE(parse({"--seed"}, &error).has_value());
  EXPECT_FALSE(parse({"--policy", "fastest"}, &error).has_value());
  EXPECT_NE(error.find("fastest"), std::string::npos);
  EXPECT_FALSE(parse({"--strategy", "bcast"}, &error).has_value());
  EXPECT_FALSE(parse({"--out="}, &error).has_value());
}

TEST(BenchCliTest, RejectsUnknownArguments) {
  std::string error;
  EXPECT_FALSE(parse({"--frobnicate"}, &error).has_value());
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
  EXPECT_FALSE(parse({"extra"}, &error).has_value());
}

TEST(BenchCliTest, HelpIsSignalledThroughTheErrorChannel) {
  std::string error;
  EXPECT_FALSE(parse({"--help"}, &error).has_value());
  EXPECT_EQ(error, "help");
  EXPECT_FALSE(parse({"-h"}, &error).has_value());
  EXPECT_EQ(error, "help");
}

}  // namespace
}  // namespace qadist::bench
