#include "sched/failure_detector.hpp"

#include <gtest/gtest.h>

#include <string>

namespace qadist::sched {
namespace {

FailureDetectorConfig config() {
  FailureDetectorConfig cfg;
  cfg.heartbeat_period = 1.0;
  cfg.suspect_after_missed = 2.0;
  cfg.confirm_dead_after = 3.0;
  return cfg;
}

TEST(FailureDetectorTest, UnknownPeersReadAlive) {
  FailureDetector det(config());
  EXPECT_EQ(det.state(5), PeerState::kAlive);
  EXPECT_FALSE(det.known(5));
  // Silence never convicts a peer that was never enrolled.
  EXPECT_TRUE(det.sweep(100.0).empty());
}

TEST(FailureDetectorTest, FullLifecycleAliveSuspectDeadRejoin) {
  FailureDetector det(config());
  det.heartbeat(1, 0.0);
  det.heartbeat(1, 1.0);  // on schedule
  EXPECT_EQ(det.state(1), PeerState::kAlive);

  // Silence passes the 2-beat threshold: suspect (strict >, so exactly 2
  // beats of silence is still tolerated).
  EXPECT_TRUE(det.sweep(3.0).empty());
  auto fired = det.sweep(3.5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].node, 1u);
  EXPECT_EQ(fired[0].from, PeerState::kAlive);
  EXPECT_EQ(fired[0].to, PeerState::kSuspect);
  EXPECT_EQ(det.state(1), PeerState::kSuspect);

  // Repeated sweeps are edge-triggered: nothing new fires.
  EXPECT_TRUE(det.sweep(3.5).empty());

  // Silence passes confirm_dead_after: dead.
  fired = det.sweep(4.5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].from, PeerState::kSuspect);
  EXPECT_EQ(fired[0].to, PeerState::kDead);
  EXPECT_EQ(det.state(1), PeerState::kDead);
  EXPECT_TRUE(det.sweep(50.0).empty());  // dead stays dead under silence

  // A beat from the grave is a rejoin, reported as the prior state.
  EXPECT_EQ(det.heartbeat(1, 60.0), PeerState::kDead);
  EXPECT_EQ(det.state(1), PeerState::kAlive);
  EXPECT_EQ(det.suspicions_raised(), 1u);
  EXPECT_EQ(det.deaths_confirmed(), 1u);
  EXPECT_EQ(det.rejoins(), 1u);
  EXPECT_EQ(det.suspicions_cleared(), 0u);
}

TEST(FailureDetectorTest, LateBeatClearsSuspicionAsFalseAlarm) {
  FailureDetector det(config());
  det.heartbeat(2, 0.0);
  ASSERT_EQ(det.sweep(2.5).size(), 1u);
  EXPECT_EQ(det.state(2), PeerState::kSuspect);
  EXPECT_EQ(det.heartbeat(2, 2.6), PeerState::kSuspect);
  EXPECT_EQ(det.state(2), PeerState::kAlive);
  EXPECT_EQ(det.suspicions_cleared(), 1u);
  EXPECT_EQ(det.deaths_confirmed(), 0u);
  // The clock restarted: the old silence does not carry over.
  EXPECT_TRUE(det.sweep(4.0).empty());
}

TEST(FailureDetectorTest, SuspectHintRaisesImmediately) {
  FailureDetector det(config());
  det.heartbeat(3, 0.0);
  det.suspect_hint(3, 0.1);  // an RPC just failed; don't wait 2 beats
  EXPECT_EQ(det.state(3), PeerState::kSuspect);
  EXPECT_EQ(det.suspicions_raised(), 1u);
  det.suspect_hint(3, 0.2);  // idempotent on an existing suspect
  EXPECT_EQ(det.suspicions_raised(), 1u);
  // The hinted suspicion hardens into death on the usual silence clock.
  const auto fired = det.sweep(3.5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].to, PeerState::kDead);
}

TEST(FailureDetectorTest, SuspectHintEnrollsUnknownPeers) {
  FailureDetector det(config());
  det.suspect_hint(4, 10.0);
  EXPECT_TRUE(det.known(4));
  EXPECT_EQ(det.state(4), PeerState::kSuspect);
  // Enrollment stamps last_heard, so the death clock runs from the hint.
  EXPECT_TRUE(det.sweep(12.0).empty());
  EXPECT_EQ(det.sweep(13.5).size(), 1u);
  EXPECT_EQ(det.state(4), PeerState::kDead);
}

TEST(FailureDetectorTest, LongSilenceFiresBothTransitionsInOneSweep) {
  FailureDetector det(config());
  det.heartbeat(1, 0.0);
  const auto fired = det.sweep(10.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].to, PeerState::kSuspect);
  EXPECT_EQ(fired[1].to, PeerState::kDead);
  EXPECT_EQ(det.state(1), PeerState::kDead);
}

TEST(FailureDetectorTest, PeersAreIndependent) {
  FailureDetector det(config());
  det.heartbeat(0, 0.0);
  det.heartbeat(1, 0.0);
  det.heartbeat(0, 4.0);  // peer 0 keeps beating, peer 1 goes silent
  const auto fired = det.sweep(4.5);
  ASSERT_EQ(fired.size(), 2u);  // suspect + dead, both for peer 1
  EXPECT_EQ(fired[0].node, 1u);
  EXPECT_EQ(fired[1].node, 1u);
  EXPECT_EQ(det.state(0), PeerState::kAlive);
}

TEST(FailureDetectorTest, ToStringCoversEveryState) {
  EXPECT_EQ(std::string(to_string(PeerState::kAlive)), "alive");
  EXPECT_EQ(std::string(to_string(PeerState::kSuspect)), "suspect");
  EXPECT_EQ(std::string(to_string(PeerState::kDead)), "dead");
}

TEST(FailureDetectorTest, HintHysteresisSuppressesFlapAfterFalseAlarm) {
  FailureDetectorConfig cfg = config();
  cfg.hint_hysteresis = 10.0;
  FailureDetector det(cfg);
  det.heartbeat(3, 0.0);
  det.suspect_hint(3, 0.5);
  EXPECT_EQ(det.state(3), PeerState::kSuspect);
  // An on-schedule beat proves the hint wrong: cleared, window armed.
  det.heartbeat(3, 1.0);
  EXPECT_EQ(det.state(3), PeerState::kAlive);
  EXPECT_EQ(det.suspicions_cleared(), 1u);
  // Inside the window, with beats still current, hints are swallowed —
  // this is what keeps a gray-slow (but alive) peer from flapping.
  det.heartbeat(3, 2.0);
  det.suspect_hint(3, 2.5);
  EXPECT_EQ(det.state(3), PeerState::kAlive);
  EXPECT_EQ(det.hints_suppressed(), 1u);
  // Past the window the next hint raises as usual.
  det.heartbeat(3, 11.5);
  det.suspect_hint(3, 12.0);
  EXPECT_EQ(det.state(3), PeerState::kSuspect);
  EXPECT_EQ(det.suspicions_raised(), 2u);
}

TEST(FailureDetectorTest, StaleBeatsVoidHintSuppression) {
  FailureDetectorConfig cfg = config();
  cfg.hint_hysteresis = 100.0;
  FailureDetector det(cfg);
  det.heartbeat(1, 0.0);
  det.suspect_hint(1, 0.5);
  det.heartbeat(1, 1.0);  // window armed until t=101
  // By t=5 the peer has been silent past suspect_after (2 beats): the hint
  // is corroborated by silence, so the window must not shield it.
  det.suspect_hint(1, 5.0);
  EXPECT_EQ(det.state(1), PeerState::kSuspect);
  EXPECT_EQ(det.hints_suppressed(), 0u);
}

TEST(FailureDetectorTest, SweepSuspicionIsNeverSuppressed) {
  FailureDetectorConfig cfg = config();
  cfg.hint_hysteresis = 100.0;
  FailureDetector det(cfg);
  det.heartbeat(2, 0.0);
  det.suspect_hint(2, 0.5);
  det.heartbeat(2, 1.0);  // window armed
  // Heartbeat-silence suspicion bypasses the hint path entirely: a peer
  // that actually goes quiet is still convicted inside the window.
  const auto fired = det.sweep(4.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].to, PeerState::kSuspect);
}

TEST(FailureDetectorTest, ZeroHysteresisKeepsLegacyFlapBehavior) {
  FailureDetector det(config());  // hint_hysteresis defaults to 0
  det.heartbeat(4, 0.0);
  det.suspect_hint(4, 0.5);
  det.heartbeat(4, 1.0);
  det.suspect_hint(4, 1.5);  // immediately re-raises: the pre-PR flap
  EXPECT_EQ(det.state(4), PeerState::kSuspect);
  EXPECT_EQ(det.hints_suppressed(), 0u);
  EXPECT_EQ(det.suspicions_raised(), 2u);
}

}  // namespace
}  // namespace qadist::sched
