#include "sched/load_table.hpp"

#include <gtest/gtest.h>

namespace qadist::sched {
namespace {

TEST(LoadTableTest, UpdateCreatesMembership) {
  LoadTable t;
  EXPECT_FALSE(t.is_member(3));
  t.update(3, ResourceLoad{1.0, 0.5}, 0.0);
  EXPECT_TRUE(t.is_member(3));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.load_of(3), (ResourceLoad{1.0, 0.5}));
}

TEST(LoadTableTest, ExpireDropsSilentNodes) {
  LoadTable t;
  t.update(0, ResourceLoad{}, 0.0);
  t.update(1, ResourceLoad{}, 5.0);
  t.expire(7.0, 3.0);
  EXPECT_FALSE(t.is_member(0));  // last heard at 0: 7s of silence > 3s
  EXPECT_TRUE(t.is_member(1));
  EXPECT_EQ(t.members(), std::vector<NodeId>{1});
}

TEST(LoadTableTest, RejoinAfterExpiry) {
  LoadTable t;
  t.update(0, ResourceLoad{}, 0.0);
  t.expire(10.0, 3.0);
  EXPECT_FALSE(t.is_member(0));
  t.update(0, ResourceLoad{2.0, 0.0}, 10.0);  // broadcasting again = rejoin
  EXPECT_TRUE(t.is_member(0));
  EXPECT_DOUBLE_EQ(t.load_of(0).cpu, 2.0);
}

TEST(LoadTableTest, LeastLoadedRespectsWeights) {
  LoadTable t;
  t.update(0, ResourceLoad{0.1, 5.0}, 0.0);  // idle CPU, hammered disk
  t.update(1, ResourceLoad{5.0, 0.1}, 0.0);  // hammered CPU, idle disk
  // A CPU-bound module prefers node 0; a disk-bound module prefers node 1.
  EXPECT_EQ(*t.least_loaded(kApWeights), 0u);
  EXPECT_EQ(*t.least_loaded(kPrWeights), 1u);
}

TEST(LoadTableTest, LeastLoadedTieBreaksLow) {
  LoadTable t;
  t.update(2, ResourceLoad{1.0, 1.0}, 0.0);
  t.update(1, ResourceLoad{1.0, 1.0}, 0.0);
  EXPECT_EQ(*t.least_loaded(kQaWeights), 1u);
}

TEST(LoadTableTest, EmptyTableHasNoLeastLoaded) {
  LoadTable t;
  EXPECT_FALSE(t.least_loaded(kQaWeights).has_value());
}

TEST(LoadTableTest, StaleEntriesLoseToFreshOnes) {
  LoadTable t;
  t.update(0, ResourceLoad{5.0, 5.0}, 0.0);  // heavily loaded but trusted
  t.update(1, ResourceLoad{0.0, 0.0}, 0.0);  // idle but suspected
  t.mark_stale(1);
  EXPECT_TRUE(t.is_stale(1));
  EXPECT_FALSE(t.is_stale(0));
  // The fresh pass wins even against a better stale figure.
  EXPECT_EQ(*t.least_loaded(kQaWeights), 0u);
  // With every entry stale, the fallback pass still picks someone.
  t.mark_stale(0);
  EXPECT_EQ(*t.least_loaded(kQaWeights), 1u);
}

TEST(LoadTableTest, FreshBroadcastClearsStaleness) {
  LoadTable t;
  t.update(2, ResourceLoad{}, 0.0);
  t.mark_stale(2);
  EXPECT_TRUE(t.is_stale(2));
  t.update(2, ResourceLoad{1.0, 0.0}, 1.0);
  EXPECT_FALSE(t.is_stale(2));
  t.mark_stale(2);
  t.mark_stale(2, false);  // explicit un-suspect (detector false alarm)
  EXPECT_FALSE(t.is_stale(2));
  // Marking a non-member is a harmless no-op.
  t.mark_stale(9);
  EXPECT_FALSE(t.is_stale(9));
}

TEST(LoadTableTest, ReservationsAddAndClearOnUpdate) {
  LoadTable t;
  t.update(0, ResourceLoad{1.0, 0.0}, 0.0);
  t.reserve(0, ResourceLoad{0.79, 0.21});
  EXPECT_NEAR(t.load_of(0).cpu, 1.79, 1e-12);
  EXPECT_NEAR(t.load_of(0).disk, 0.21, 1e-12);
  t.reserve(0, ResourceLoad{0.79, 0.21});
  EXPECT_NEAR(t.load_of(0).cpu, 2.58, 1e-12);
  // Next broadcast reflects reality; reservations reset.
  t.update(0, ResourceLoad{2.0, 0.4}, 1.0);
  EXPECT_NEAR(t.load_of(0).cpu, 2.0, 1e-12);
}

TEST(LoadTableTest, MeanPoolLoadAveragesTheWeightedLoads) {
  LoadTable t;
  EXPECT_DOUBLE_EQ(mean_pool_load(t, kQaWeights), 0.0);  // empty pool
  t.update(0, ResourceLoad{1.0, 0.0}, 0.0);
  t.update(1, ResourceLoad{3.0, 0.0}, 0.0);
  const double expected = (load_function(ResourceLoad{1.0, 0.0}, kQaWeights) +
                           load_function(ResourceLoad{3.0, 0.0}, kQaWeights)) /
                          2.0;
  EXPECT_DOUBLE_EQ(mean_pool_load(t, kQaWeights), expected);
}

TEST(LoadTableTest, ReservationAffectsLeastLoaded) {
  LoadTable t;
  t.update(0, ResourceLoad{}, 0.0);
  t.update(1, ResourceLoad{}, 0.0);
  t.reserve(0, ResourceLoad{1.0, 0.0});
  EXPECT_EQ(*t.least_loaded(kQaWeights), 1u);
}

}  // namespace
}  // namespace qadist::sched
