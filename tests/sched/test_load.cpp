#include "sched/load.hpp"

#include <gtest/gtest.h>

namespace qadist::sched {
namespace {

TEST(LoadFunctionTest, WeightedCombination) {
  const ResourceLoad load{2.0, 1.0};
  EXPECT_DOUBLE_EQ(load_function(load, LoadWeights{1.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(load_function(load, LoadWeights{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(load_function(load, LoadWeights{0.5, 0.5}), 1.5);
}

TEST(LoadFunctionTest, PaperTable3Weights) {
  // Eq. 4-6 instantiated with Table 3: sanity of the constants themselves.
  EXPECT_DOUBLE_EQ(kQaWeights.cpu + kQaWeights.disk, 1.0);
  EXPECT_DOUBLE_EQ(kPrWeights.cpu + kPrWeights.disk, 1.0);
  EXPECT_DOUBLE_EQ(kApWeights.cpu + kApWeights.disk, 1.0);
  EXPECT_GT(kQaWeights.cpu, kQaWeights.disk);   // Q/A task leans CPU
  EXPECT_GT(kPrWeights.disk, kPrWeights.cpu);   // PR leans disk
  EXPECT_DOUBLE_EQ(kApWeights.disk, 0.0);       // AP is pure CPU
}

TEST(LoadFunctionTest, SingleTaskLoadThresholds) {
  // One lone PR sub-task: 0.2 CPU-active + 0.8 disk-active, weighted by
  // the same split -> 0.68; one lone AP sub-task -> 1.0 (Eq. 7-8).
  EXPECT_NEAR(single_task_load(kPrWeights), 0.68, 1e-12);
  EXPECT_NEAR(single_task_load(kApWeights), 1.0, 1e-12);
  EXPECT_NEAR(single_task_load(kQaWeights), 0.79 * 0.79 + 0.21 * 0.21, 1e-12);
}

TEST(LoadFunctionTest, MoreLoadMeansBiggerValue) {
  const ResourceLoad light{0.3, 0.1};
  const ResourceLoad heavy{3.0, 2.0};
  for (const auto& w : {kQaWeights, kPrWeights, kApWeights}) {
    EXPECT_LT(load_function(light, w), load_function(heavy, w));
  }
}

}  // namespace
}  // namespace qadist::sched
