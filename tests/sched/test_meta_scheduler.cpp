#include "sched/meta_scheduler.hpp"

#include <gtest/gtest.h>

#include "sched/dispatcher.hpp"

namespace qadist::sched {
namespace {

LoadTable table_with(std::initializer_list<ResourceLoad> loads) {
  LoadTable t;
  NodeId id = 0;
  for (const auto& l : loads) t.update(id++, l, 0.0);
  return t;
}

TEST(MetaSchedulerTest, AllIdleSelectsEveryoneEqually) {
  const auto t = table_with({{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  EXPECT_TRUE(ms.partitioned);
  ASSERT_EQ(ms.selected.size(), 4u);
  for (double w : ms.weights) EXPECT_NEAR(w, 0.25, 1e-12);
}

TEST(MetaSchedulerTest, WeightsSumToOne) {
  const auto t = table_with({{0.1, 0}, {0.5, 0}, {0.9, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  double sum = 0;
  for (double w : ms.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MetaSchedulerTest, LighterNodesGetBiggerWeights) {
  const auto t = table_with({{0.1, 0}, {0.8, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  ASSERT_EQ(ms.selected.size(), 2u);
  EXPECT_GT(ms.weights[0], ms.weights[1]);
  // Headroom formula: the most loaded selected node keeps a positive share.
  EXPECT_GT(ms.weights[1], 0.0);
}

TEST(MetaSchedulerTest, OverloadedNodesExcluded) {
  const auto t = table_with({{0.2, 0}, {3.0, 0}, {0.4, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  EXPECT_TRUE(ms.partitioned);
  EXPECT_EQ(ms.selected, (std::vector<NodeId>{0, 2}));
}

TEST(MetaSchedulerTest, NoUnderloadedFallsBackToLeastLoaded) {
  // Step 2 of Fig. 4: everyone is busy -> pick the single best node, no
  // partitioning.
  const auto t = table_with({{4.0, 0}, {2.5, 0}, {3.0, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  EXPECT_FALSE(ms.partitioned);
  EXPECT_EQ(ms.selected, std::vector<NodeId>{1});
  EXPECT_EQ(ms.weights, std::vector<double>{1.0});
}

TEST(MetaSchedulerTest, UsesModuleWeights) {
  // Node 0: busy disk; node 1: busy CPU. For the disk-bound PR module only
  // node 1 is under-loaded.
  const auto t = table_with({{0.0, 2.0}, {2.0, 0.0}});
  const auto pr = meta_schedule(t, kPrWeights, single_task_load(kPrWeights));
  EXPECT_EQ(pr.selected, std::vector<NodeId>{1});
  // For the CPU-bound AP module it's the other way round.
  const auto ap = meta_schedule(t, kApWeights, single_task_load(kApWeights));
  EXPECT_EQ(ap.selected, std::vector<NodeId>{0});
}

TEST(MetaSchedulerTest, SingletonUnderloadedIsNotPartitioned) {
  const auto t = table_with({{0.1, 0}, {5.0, 0}});
  const auto ms = meta_schedule(t, kApWeights, 1.0);
  EXPECT_FALSE(ms.partitioned);
  EXPECT_EQ(ms.selected, std::vector<NodeId>{0});
}

// ------------------------------------------------------------ dispatcher

TEST(DispatcherTest, NoMigrationWhenBalanced) {
  const auto t = table_with({{1.0, 0.2}, {1.0, 0.2}});
  const auto d = decide_migration(t, 0, kQaWeights,
                                  single_task_load(kQaWeights));
  EXPECT_FALSE(d.migrate);
}

TEST(DispatcherTest, MigratesWhenGapExceedsOneQuestion) {
  const auto t = table_with({{5.0, 1.0}, {0.1, 0.0}});
  const auto d = decide_migration(t, 0, kQaWeights,
                                  single_task_load(kQaWeights));
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(d.target, 1u);
}

TEST(DispatcherTest, SmallGapDoesNotMigrate) {
  // Gap of ~0.4 question-loads: below the one-question threshold, the
  // migration would be "useless" (paper Sec. 3.1).
  const auto t = table_with({{0.4, 0.0}, {0.1, 0.0}});
  const auto d = decide_migration(t, 0, kQaWeights,
                                  single_task_load(kQaWeights));
  EXPECT_FALSE(d.migrate);
}

TEST(DispatcherTest, CurrentIsBestNoMigration) {
  const auto t = table_with({{0.1, 0.0}, {4.0, 0.0}});
  const auto d = decide_migration(t, 0, kQaWeights, 0.5);
  EXPECT_FALSE(d.migrate);
}

TEST(DispatcherTest, PingPongGapDoesNotMigrate) {
  // Regression: the moved question itself swings the gap by two loads
  // (the source sheds one, the target gains one). With a gap of 1.5
  // question-loads a 1x threshold migrates and leaves the imbalance
  // reversed, so a stream of arrivals bounces work back and forth. The
  // threshold must be 2x for the move to still pay off after landing.
  const double one = single_task_load(kQaWeights);
  const auto t = table_with({{1.5 * one / kQaWeights.cpu, 0.0}, {0.0, 0.0}});
  const auto d = decide_migration(t, 0, kQaWeights, one);
  EXPECT_FALSE(d.migrate) << "gap of 1.5 question-loads must not migrate";
}

TEST(DispatcherTest, MigrationAboveTwoLoadsDoesNotReverse) {
  const double one = single_task_load(kQaWeights);
  const auto t = table_with({{3.0 * one / kQaWeights.cpu, 0.0}, {0.0, 0.0}});
  const auto d = decide_migration(t, 0, kQaWeights, one);
  ASSERT_TRUE(d.migrate);
  ASSERT_EQ(d.target, 1u);
  // Land the question (source sheds one load, target gains one): the
  // target's own dispatcher must not bounce it back.
  const auto after = table_with(
      {{2.0 * one / kQaWeights.cpu, 0.0}, {1.0 * one / kQaWeights.cpu, 0.0}});
  const auto back = decide_migration(after, 1, kQaWeights, one);
  EXPECT_FALSE(back.migrate);
}

}  // namespace
}  // namespace qadist::sched
