// Property sweeps of the meta-scheduler over randomized load tables: the
// invariants of paper Fig. 4 must hold for any pool state.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/meta_scheduler.hpp"

namespace qadist::sched {
namespace {

struct Scenario {
  std::size_t nodes;
  double max_load;
  std::uint64_t seed;
};

class MetaSchedulerProperties : public ::testing::TestWithParam<Scenario> {};

TEST_P(MetaSchedulerProperties, InvariantsHoldOnRandomTables) {
  const auto scenario = GetParam();
  Rng rng(scenario.seed);
  for (int round = 0; round < 50; ++round) {
    LoadTable table;
    for (NodeId id = 0; id < scenario.nodes; ++id) {
      table.update(id,
                   ResourceLoad{rng.uniform(0.0, scenario.max_load),
                                rng.uniform(0.0, scenario.max_load)},
                   0.0);
    }
    for (const auto& weights : {kQaWeights, kPrWeights, kApWeights}) {
      const double threshold = rng.uniform(0.1, 3.0);
      const auto ms = meta_schedule(table, weights, threshold);

      // 1. Always at least one node selected, all of them pool members.
      ASSERT_FALSE(ms.selected.empty());
      for (NodeId id : ms.selected) ASSERT_TRUE(table.is_member(id));

      // 2. No duplicates.
      for (std::size_t i = 0; i < ms.selected.size(); ++i) {
        for (std::size_t j = i + 1; j < ms.selected.size(); ++j) {
          ASSERT_NE(ms.selected[i], ms.selected[j]);
        }
      }

      // 3. Weights parallel, positive, normalized.
      ASSERT_EQ(ms.weights.size(), ms.selected.size());
      double sum = 0.0;
      for (double w : ms.weights) {
        ASSERT_GT(w, 0.0);
        sum += w;
      }
      ASSERT_NEAR(sum, 1.0, 1e-9);

      // 4. partitioned <=> more than one node selected.
      ASSERT_EQ(ms.partitioned, ms.selected.size() > 1);

      // 5. Every selected node (when partitioned) is under the threshold;
      //    when not partitioned via step 2, the single node is the global
      //    minimum.
      if (ms.partitioned) {
        for (NodeId id : ms.selected) {
          ASSERT_LT(load_function(table.load_of(id), weights), threshold);
        }
      }

      // 6. Lighter selected nodes never get smaller weights.
      for (std::size_t i = 0; i < ms.selected.size(); ++i) {
        for (std::size_t j = 0; j < ms.selected.size(); ++j) {
          const double li = load_function(table.load_of(ms.selected[i]), weights);
          const double lj = load_function(table.load_of(ms.selected[j]), weights);
          if (li < lj) {
            ASSERT_GE(ms.weights[i], ms.weights[j] - 1e-12);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pools, MetaSchedulerProperties,
    ::testing::Values(Scenario{1, 1.0, 1}, Scenario{2, 2.0, 2},
                      Scenario{4, 0.5, 3}, Scenario{8, 4.0, 4},
                      Scenario{16, 2.0, 5}, Scenario{64, 8.0, 6}),
    [](const auto& info) {
      return "nodes" + std::to_string(info.param.nodes) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace qadist::sched
