#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "simnet/event.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/process.hpp"
#include "simnet/resource.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {
namespace {

SimProcess delayer(Simulation& sim, Seconds d, std::vector<double>& log) {
  co_await Delay(sim, d);
  log.push_back(sim.now());
}

TEST(ProcessTest, DelayResumesAtRightTime) {
  Simulation sim;
  std::vector<double> log;
  delayer(sim, 2.5, log);
  delayer(sim, 1.0, log);
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 1.0);
  EXPECT_EQ(log[1], 2.5);
}

TEST(ProcessTest, ZeroDelayDoesNotSuspend) {
  Simulation sim;
  std::vector<double> log;
  delayer(sim, 0.0, log);
  // Ran eagerly to completion without any event.
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(sim.empty());
}

SimProcess event_waiter(Simulation& sim, Event& ev, std::vector<double>& log) {
  co_await ev.wait();
  log.push_back(sim.now());
}

TEST(EventTest, WakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  std::vector<double> log;
  event_waiter(sim, ev, log);
  event_waiter(sim, ev, log);
  sim.schedule(3.0, [&] { ev.set(); });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 3.0);
  EXPECT_EQ(log[1], 3.0);
}

TEST(EventTest, WaitAfterSetPassesThrough) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  ev.set();  // idempotent
  std::vector<double> log;
  event_waiter(sim, ev, log);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(ev.is_set());
}

SimProcess wg_child(Simulation& sim, Seconds work, WaitGroup& wg) {
  co_await Delay(sim, work);
  wg.done();
}

SimProcess wg_parent(Simulation& sim, WaitGroup& wg, double& finished_at) {
  wg.add(3);
  wg_child(sim, 1.0, wg);
  wg_child(sim, 5.0, wg);
  wg_child(sim, 2.0, wg);
  co_await wg.wait();
  finished_at = sim.now();
}

TEST(WaitGroupTest, WaitsForAllChildren) {
  Simulation sim;
  WaitGroup wg(sim);
  double finished_at = -1;
  wg_parent(sim, wg, finished_at);
  sim.run();
  EXPECT_EQ(finished_at, 5.0);
  EXPECT_EQ(wg.count(), 0);
}

TEST(WaitGroupTest, ZeroCountWaitIsImmediate) {
  Simulation sim;
  WaitGroup wg(sim);
  double finished_at = -1;
  [](Simulation& s, WaitGroup& w, double& t) -> SimProcess {
    co_await w.wait();
    t = s.now();
  }(sim, wg, finished_at);
  EXPECT_EQ(finished_at, 0.0);
}

SimProcess consumer(Simulation& sim, Mailbox<std::string>& box,
                    std::vector<std::string>& got) {
  for (int i = 0; i < 3; ++i) {
    auto msg = co_await box.recv();
    got.push_back(std::to_string(sim.now()) + ":" + msg);
  }
}

TEST(MailboxTest, DeliversInFifoOrder) {
  Simulation sim;
  Mailbox<std::string> box(sim);
  std::vector<std::string> got;
  consumer(sim, box, got);
  sim.schedule(1.0, [&] {
    box.send("a");
    box.send("b");
  });
  sim.schedule(2.0, [&] { box.send("c"); });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].substr(got[0].find(':') + 1), "a");
  EXPECT_EQ(got[1].substr(got[1].find(':') + 1), "b");
  EXPECT_EQ(got[2].substr(got[2].find(':') + 1), "c");
}

TEST(MailboxTest, BufferedMessageReceivedWithoutSuspend) {
  Simulation sim;
  Mailbox<int> box(sim);
  box.send(42);
  EXPECT_EQ(box.pending(), 1u);
  int got = 0;
  [](Mailbox<int>& b, int& out) -> SimProcess {
    out = co_await b.recv();
  }(box, got);
  EXPECT_EQ(got, 42);
}

SimProcess timed_consumer(Simulation& sim, Mailbox<int>& box, Seconds timeout,
                          std::vector<std::pair<double, std::optional<int>>>& log) {
  const std::optional<int> msg = co_await box.recv_for(timeout);
  log.emplace_back(sim.now(), msg);
}

TEST(MailboxTest, RecvForTimesOutEmptyHanded) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<double, std::optional<int>>> log;
  timed_consumer(sim, box, 3.0, log);
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 3.0);
  EXPECT_FALSE(log[0].second.has_value());
}

TEST(MailboxTest, RecvForDeliveryBeatsTimeout) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<double, std::optional<int>>> log;
  timed_consumer(sim, box, 5.0, log);
  sim.schedule(1.0, [&] { box.send(7); });
  sim.run();  // the stale timeout event at t=5 must be a harmless no-op
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 1.0);
  ASSERT_TRUE(log[0].second.has_value());
  EXPECT_EQ(*log[0].second, 7);
}

TEST(MailboxTest, RecvForBufferedMessageIsImmediate) {
  Simulation sim;
  Mailbox<int> box(sim);
  box.send(9);
  std::vector<std::pair<double, std::optional<int>>> log;
  timed_consumer(sim, box, 2.0, log);
  ASSERT_EQ(log.size(), 1u);  // resolved without suspending
  EXPECT_DOUBLE_EQ(log[0].first, 0.0);
  ASSERT_TRUE(log[0].second.has_value());
  EXPECT_EQ(*log[0].second, 9);
}

TEST(MailboxTest, RecvForZeroOrNegativeTimeoutSettlesImmediately) {
  // A non-positive timeout is a pure poll: an empty mailbox answers
  // nullopt at the current instant instead of scheduling a wake-up event,
  // and a buffered message is still taken.
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<double, std::optional<int>>> log;
  timed_consumer(sim, box, 0.0, log);
  timed_consumer(sim, box, -1.0, log);
  ASSERT_EQ(log.size(), 2u);  // both resolved without suspending
  EXPECT_TRUE(sim.empty());   // and without any timeout event
  EXPECT_DOUBLE_EQ(log[0].first, 0.0);
  EXPECT_FALSE(log[0].second.has_value());
  EXPECT_FALSE(log[1].second.has_value());
  box.send(5);
  timed_consumer(sim, box, 0.0, log);
  ASSERT_EQ(log.size(), 3u);
  ASSERT_TRUE(log[2].second.has_value());
  EXPECT_EQ(*log[2].second, 5);
}

TEST(MailboxTest, RecvForTimeoutLeavesLaterSendsBuffered) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<std::pair<double, std::optional<int>>> log;
  timed_consumer(sim, box, 1.0, log);
  sim.schedule(2.0, [&] { box.send(11); });  // after the receiver gave up
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].second.has_value());
  EXPECT_EQ(box.pending(), 1u);  // nobody was waiting anymore
}

SimProcess resource_user(Simulation& sim, Resource& res, Seconds hold,
                         std::vector<std::pair<double, double>>& spans) {
  ResourceLease lease = co_await res.acquire();
  const double start = sim.now();
  co_await Delay(sim, hold);
  spans.emplace_back(start, sim.now());
}

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<std::pair<double, double>> spans;
  for (int i = 0; i < 4; ++i) resource_user(sim, res, 1.0, spans);
  sim.run();
  ASSERT_EQ(spans.size(), 4u);
  // Two run [0,1], two run [1,2] (FIFO handoff via zero-delay events).
  EXPECT_EQ(spans[0].second, 1.0);
  EXPECT_EQ(spans[1].second, 1.0);
  EXPECT_EQ(spans[2].first, 1.0);
  EXPECT_EQ(spans[3].first, 1.0);
  EXPECT_EQ(res.available(), 2);
  EXPECT_EQ(res.queued(), 0);
}

TEST(ResourceTest, PressureCountsHoldersAndWaiters) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<std::pair<double, double>> spans;
  resource_user(sim, res, 10.0, spans);
  resource_user(sim, res, 10.0, spans);
  // First holds, second queued.
  EXPECT_EQ(res.pressure(), 2);
  sim.run();
  EXPECT_EQ(res.pressure(), 0);
}

TEST(ResourceTest, LeaseResetReleasesEarly) {
  Simulation sim;
  Resource res(sim, 1);
  [](Simulation& s, Resource& r) -> SimProcess {
    ResourceLease lease = co_await r.acquire();
    co_await Delay(s, 1.0);
    lease.reset();
    EXPECT_FALSE(lease.holds());
    co_await Delay(s, 10.0);
  }(sim, res);
  sim.run_until(2.0);
  EXPECT_EQ(res.available(), 1);
}

TEST(ResourceTest, LeaseMoveTransfersOwnership) {
  Simulation sim;
  Resource res(sim, 1);
  [](Resource& r) -> SimProcess {
    ResourceLease a = co_await r.acquire();
    ResourceLease b = std::move(a);
    EXPECT_FALSE(a.holds());  // NOLINT(bugprone-use-after-move): testing move semantics
    EXPECT_TRUE(b.holds());
  }(res);
  sim.run();
  EXPECT_EQ(res.available(), 1);
}

}  // namespace
}  // namespace qadist::simnet
