#include "simnet/link_fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simnet/link.hpp"
#include "simnet/process.hpp"

namespace qadist::simnet {
namespace {

TEST(LinkFaultPlanTest, DefaultPlanIsDisabled) {
  LinkFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.drop_probability = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = LinkFaultPlan{};
  plan.partitions.push_back(PartitionWindow{1.0, 2.0, {0}});
  EXPECT_TRUE(plan.enabled());
}

TEST(LinkFaultPlanTest, MalformedPlansPanic) {
  EXPECT_DEATH(LinkFaultInjector(LinkFaultPlan{.drop_probability = 1.5}, 1),
               "");
  EXPECT_DEATH(LinkFaultInjector(LinkFaultPlan{.duplicate_probability = -0.1},
                                 1),
               "");
  EXPECT_DEATH(
      LinkFaultInjector(LinkFaultPlan{.jitter_min = 0.5, .jitter_max = 0.1},
                        1),
      "");
  LinkFaultPlan bad_window;
  bad_window.partitions.push_back(PartitionWindow{2.0, 1.0, {0}});
  EXPECT_DEATH(LinkFaultInjector(bad_window, 1), "");
  LinkFaultPlan empty_window;
  empty_window.partitions.push_back(PartitionWindow{1.0, 2.0, {}});
  EXPECT_DEATH(LinkFaultInjector(empty_window, 1), "");
}

TEST(LinkFaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  LinkFaultPlan plan;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.jitter_min = 0.001;
  plan.jitter_max = 0.01;
  LinkFaultInjector a(plan, 42);
  LinkFaultInjector b(plan, 42);
  for (int i = 0; i < 200; ++i) {
    const auto va = a.decide(0, 1, 0.1 * i);
    const auto vb = b.decide(0, 1, 0.1 * i);
    EXPECT_EQ(va.delivered, vb.delivered);
    EXPECT_EQ(va.duplicated, vb.duplicated);
    EXPECT_DOUBLE_EQ(va.jitter, vb.jitter);
  }
  EXPECT_EQ(a.random_drops(), b.random_drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_GT(a.random_drops(), 0u);
  EXPECT_GT(a.duplicates(), 0u);
  EXPECT_EQ(a.messages(), 200u);
}

TEST(LinkFaultInjectorTest, DropRateIsRoughlyHonored) {
  LinkFaultPlan plan;
  plan.drop_probability = 0.25;
  LinkFaultInjector inj(plan, 7);
  const int n = 10000;
  for (int i = 0; i < n; ++i) (void)inj.decide(0, 1, 0.0);
  const double rate = static_cast<double>(inj.random_drops()) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(LinkFaultInjectorTest, JitterStaysInBounds) {
  LinkFaultPlan plan;
  plan.jitter_min = 0.002;
  plan.jitter_max = 0.008;
  LinkFaultInjector inj(plan, 3);
  for (int i = 0; i < 500; ++i) {
    const auto v = inj.decide(0, 1, 0.0);
    EXPECT_TRUE(v.delivered);
    EXPECT_GE(v.jitter, 0.002);
    EXPECT_LE(v.jitter, 0.008);
  }
}

TEST(LinkFaultInjectorTest, PartitionSeparatesSidesBothWaysWhileActive) {
  LinkFaultPlan plan;
  plan.partitions.push_back(PartitionWindow{10.0, 20.0, {2, 3}});
  LinkFaultInjector inj(plan, 1);
  // Across the cut, both directions, only inside [from, until).
  EXPECT_TRUE(inj.partitioned(0, 2, 15.0));
  EXPECT_TRUE(inj.partitioned(2, 0, 15.0));
  EXPECT_FALSE(inj.partitioned(0, 2, 9.9));
  EXPECT_FALSE(inj.partitioned(0, 2, 20.0));  // half-open window
  // Same side of the cut: both isolated, or both in the majority.
  EXPECT_FALSE(inj.partitioned(2, 3, 15.0));
  EXPECT_FALSE(inj.partitioned(0, 1, 15.0));
  // The verdict counts it as a partition drop, not a random one.
  const auto v = inj.decide(0, 2, 15.0);
  EXPECT_FALSE(v.delivered);
  EXPECT_EQ(inj.partition_drops(), 1u);
  EXPECT_EQ(inj.random_drops(), 0u);
}

TEST(LinkFaultInjectorTest, BroadcastDroppedOnlyWhenSenderIsolated) {
  LinkFaultPlan plan;
  plan.partitions.push_back(PartitionWindow{0.0, 10.0, {1}});
  LinkFaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.decide(1, kBroadcastNode, 5.0).delivered);
  EXPECT_TRUE(inj.decide(0, kBroadcastNode, 5.0).delivered);
  EXPECT_TRUE(inj.decide(1, kBroadcastNode, 15.0).delivered);
}

// --- Link::send integration -------------------------------------------------

SimProcess send_one(Simulation& sim, Link& link, double bytes,
                    std::uint32_t src, std::uint32_t dst,
                    std::vector<double>& finish, std::vector<LinkVerdict>& out) {
  const LinkVerdict v = co_await link.send(bytes, src, dst);
  finish.push_back(sim.now());
  out.push_back(v);
}

TEST(LinkSendTest, WithoutInjectorSendMatchesTransferTiming) {
  // transfer() reference run.
  Simulation ref_sim;
  Link ref(ref_sim, "l", Bandwidth{100.0}, 0.5);
  std::vector<double> ref_t(1, -1);
  [](Simulation& sim, Link& link, std::vector<double>& t) -> SimProcess {
    co_await link.transfer(100.0);
    t[0] = sim.now();
  }(ref_sim, ref, ref_t);
  ref_sim.run();

  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 0.5);
  std::vector<double> t;
  std::vector<LinkVerdict> verdicts;
  send_one(sim, link, 100.0, 0, 1, t, verdicts);
  sim.run();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0], ref_t[0]);
  EXPECT_EQ(sim.executed_events(), ref_sim.executed_events());
  EXPECT_TRUE(verdicts[0].delivered);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 100.0);
}

TEST(LinkSendTest, DroppedMessagePaysLatencyButNoBandwidth) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 0.5);
  LinkFaultInjector inj(LinkFaultPlan{.drop_probability = 1.0}, 1);
  link.set_fault_injector(&inj);
  std::vector<double> t;
  std::vector<LinkVerdict> verdicts;
  send_one(sim, link, 100.0, 0, 1, t, verdicts);
  sim.run();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0], 0.5);  // latency only: the payload never crossed
  EXPECT_FALSE(verdicts[0].delivered);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 0.0);
}

TEST(LinkSendTest, DuplicatedMessagePaysBandwidthTwice) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 0.0);
  LinkFaultInjector inj(LinkFaultPlan{.duplicate_probability = 1.0}, 1);
  link.set_fault_injector(&inj);
  std::vector<double> t;
  std::vector<LinkVerdict> verdicts;
  send_one(sim, link, 100.0, 0, 1, t, verdicts);
  sim.run();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0], 2.0);  // 200 bytes at 100 B/s
  EXPECT_TRUE(verdicts[0].delivered);
  EXPECT_TRUE(verdicts[0].duplicated);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 200.0);
}

}  // namespace
}  // namespace qadist::simnet
