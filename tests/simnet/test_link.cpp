#include "simnet/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simnet/process.hpp"

namespace qadist::simnet {
namespace {

SimProcess sender(Simulation& sim, Link& link, Seconds start, double bytes,
                  std::vector<double>& finish, std::size_t slot) {
  co_await Delay(sim, start);
  co_await link.transfer(bytes);
  finish[slot] = sim.now();
}

TEST(LinkTest, LatencyPlusBandwidth) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, /*latency=*/0.5);  // 100 B/s
  std::vector<double> t(1, -1);
  sender(sim, link, 0.0, 100.0, t, 0);
  sim.run();
  EXPECT_NEAR(t[0], 1.5, 1e-9);  // 0.5 s latency + 1 s payload
  EXPECT_EQ(link.messages(), 1u);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 100.0);
}

TEST(LinkTest, ConcurrentTransfersShareBandwidth) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 0.0);
  std::vector<double> t(2, -1);
  sender(sim, link, 0.0, 100.0, t, 0);
  sender(sim, link, 0.0, 100.0, t, 1);
  sim.run();
  // Fluid fair share: both complete at 2 s.
  EXPECT_NEAR(t[0], 2.0, 1e-9);
  EXPECT_NEAR(t[1], 2.0, 1e-9);
}

TEST(LinkTest, LatencyLegsDoNotContendForBandwidth) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 1.0);
  std::vector<double> t(2, -1);
  sender(sim, link, 0.0, 100.0, t, 0);
  // Second message starts its latency while the first transfers payload:
  // only the payload phases share the channel.
  sender(sim, link, 0.5, 0.0, t, 1);  // zero-byte message: latency only
  sim.run();
  EXPECT_NEAR(t[1], 1.5, 1e-9);
  EXPECT_NEAR(t[0], 2.0, 1e-9);  // latency 1 + 100B alone at 100 B/s
}

TEST(LinkTest, ZeroLatencyZeroBytesCompletesImmediately) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{100.0}, 0.0);
  std::vector<double> t(1, -1);
  sender(sim, link, 0.0, 0.0, t, 0);
  sim.run();
  EXPECT_NEAR(t[0], 0.0, 1e-12);
}

TEST(LinkTest, ManyMessagesCounted) {
  Simulation sim;
  Link link(sim, "l", Bandwidth{1e6}, 1e-3);
  std::vector<double> t(20, -1);
  for (std::size_t i = 0; i < 20; ++i) {
    sender(sim, link, 0.01 * static_cast<double>(i), 50.0, t, i);
  }
  sim.run();
  EXPECT_EQ(link.messages(), 20u);
  EXPECT_DOUBLE_EQ(link.bytes_served(), 1000.0);
  for (double v : t) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace qadist::simnet
