// Stress and interaction tests of the discrete-event kernel: thousands of
// interleaved processes, resources and links, with conservation checks.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "simnet/event.hpp"
#include "simnet/fair_share.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/process.hpp"
#include "simnet/resource.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {
namespace {

SimProcess worker(Simulation& sim, FairShareServer& cpu,
                  FairShareServer& disk, Resource& slots, Seconds start,
                  double cpu_work, double disk_work, int& completed) {
  co_await Delay(sim, start);
  ResourceLease lease = co_await slots.acquire();
  co_await disk.consume(disk_work);
  co_await cpu.consume(cpu_work);
  ++completed;
}

TEST(EngineStressTest, ThousandProcessesAllComplete) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 4.0, 1.0);
  FairShareServer disk(sim, "disk", 100.0, 100.0);
  Resource slots(sim, 8);
  Rng rng(7);
  int completed = 0;
  double total_cpu = 0.0, total_disk = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double c = rng.uniform(0.01, 2.0);
    const double d = rng.uniform(0.1, 20.0);
    total_cpu += c;
    total_disk += d;
    worker(sim, cpu, disk, slots, rng.uniform(0.0, 50.0), c, d, completed);
  }
  sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(cpu.work_served(), total_cpu, 1e-6 * total_cpu);
  EXPECT_NEAR(disk.work_served(), total_disk, 1e-6 * total_disk);
  EXPECT_EQ(cpu.active(), 0);
  EXPECT_EQ(slots.available(), 8);
  // Makespan lower bounds: neither resource can beat its capacity.
  EXPECT_GE(sim.now(), total_cpu / 4.0);
  EXPECT_GE(sim.now(), total_disk / 100.0);
}

TEST(EngineStressTest, DeterministicUnderHeavyInterleaving) {
  const auto run = [] {
    Simulation sim;
    FairShareServer cpu(sim, "cpu", 2.0, 1.0);
    Resource slots(sim, 3);
    Rng rng(99);
    int completed = 0;
    for (int i = 0; i < 300; ++i) {
      worker(sim, cpu, cpu, slots, rng.uniform(0.0, 10.0),
             rng.uniform(0.01, 1.0), rng.uniform(0.01, 1.0), completed);
    }
    sim.run();
    return sim.now();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

SimProcess relay(Simulation& sim, Mailbox<int>& in, Mailbox<int>& out,
                 int count) {
  for (int i = 0; i < count; ++i) {
    const int v = co_await in.recv();
    co_await Delay(sim, 0.001);
    out.send(v + 1);
  }
}

TEST(EngineStressTest, MailboxRelayChainPreservesOrderAndCount) {
  Simulation sim;
  constexpr int kHops = 10;
  constexpr int kMessages = 100;
  std::vector<std::unique_ptr<Mailbox<int>>> boxes;
  for (int h = 0; h <= kHops; ++h) {
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
  }
  for (int h = 0; h < kHops; ++h) {
    relay(sim, *boxes[static_cast<std::size_t>(h)],
          *boxes[static_cast<std::size_t>(h + 1)], kMessages);
  }
  std::vector<int> received;
  [](Mailbox<int>& sink, int count, std::vector<int>& out) -> SimProcess {
    for (int i = 0; i < count; ++i) out.push_back(co_await sink.recv());
  }(*boxes[kHops], kMessages, received);

  for (int i = 0; i < kMessages; ++i) boxes[0]->send(i * 10);
  sim.run();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i * 10 + kHops);
  }
}

SimProcess barrier_participant(Simulation& sim, Event& go, WaitGroup& done,
                               Seconds jitter) {
  co_await Delay(sim, jitter);
  co_await go.wait();
  co_await Delay(sim, 0.5);
  done.done();
}

TEST(EngineStressTest, EventReleasesManyWaitersAtOnce) {
  Simulation sim;
  Event go(sim);
  WaitGroup done(sim);
  done.add(200);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    barrier_participant(sim, go, done, rng.uniform(0.0, 5.0));
  }
  double released_at = -1.0;
  sim.schedule(10.0, [&] { go.set(); });
  [](Simulation& s, WaitGroup& wg, double& t) -> SimProcess {
    co_await wg.wait();
    t = s.now();
  }(sim, done, released_at);
  sim.run();
  EXPECT_NEAR(released_at, 10.5, 1e-9);
}

TEST(EngineStressTest, RunUntilInterleavesWithRun) {
  Simulation sim;
  int fired = 0;
  for (int i = 1; i <= 100; ++i) {
    sim.schedule(static_cast<double>(i), [&] { ++fired; });
  }
  sim.run_until(25.5);
  EXPECT_EQ(fired, 25);
  sim.run_until(50.0);
  EXPECT_EQ(fired, 50);
  sim.run();
  EXPECT_EQ(fired, 100);
}

}  // namespace
}  // namespace qadist::simnet
