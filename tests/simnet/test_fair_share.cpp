#include "simnet/fair_share.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simnet/process.hpp"

namespace qadist::simnet {
namespace {

SimProcess consume_at(Simulation& sim, FairShareServer& server, Seconds start,
                      double work, std::vector<double>& finish_times,
                      std::size_t slot) {
  co_await Delay(sim, start);
  co_await server.consume(work);
  finish_times[slot] = sim.now();
}

TEST(FairShareTest, SingleCustomerRunsAtMaxRate) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", /*total_rate=*/2.0, /*max_rate=*/1.0);
  std::vector<double> t(1, -1);
  consume_at(sim, cpu, 0.0, 3.0, t, 0);
  sim.run();
  // One task can't exceed one core: 3 cpu-seconds take 3 seconds.
  EXPECT_NEAR(t[0], 3.0, 1e-9);
}

TEST(FairShareTest, TwoCustomersUseBothCores) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 2.0, 1.0);
  std::vector<double> t(2, -1);
  consume_at(sim, cpu, 0.0, 3.0, t, 0);
  consume_at(sim, cpu, 0.0, 3.0, t, 1);
  sim.run();
  EXPECT_NEAR(t[0], 3.0, 1e-9);
  EXPECT_NEAR(t[1], 3.0, 1e-9);
}

TEST(FairShareTest, OverloadTimeshares) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 1.0, 1.0);
  std::vector<double> t(2, -1);
  consume_at(sim, cpu, 0.0, 1.0, t, 0);
  consume_at(sim, cpu, 0.0, 1.0, t, 1);
  sim.run();
  // Two 1-second jobs on one core in fair share both finish at t=2.
  EXPECT_NEAR(t[0], 2.0, 1e-9);
  EXPECT_NEAR(t[1], 2.0, 1e-9);
}

TEST(FairShareTest, LateArrivalSlowsEarlierFlow) {
  Simulation sim;
  FairShareServer link(sim, "net", 100.0, 100.0);  // bytes/sec
  std::vector<double> t(2, -1);
  consume_at(sim, link, 0.0, 100.0, t, 0);  // alone it would finish at 1.0
  consume_at(sim, link, 0.5, 100.0, t, 1);
  sim.run();
  // Flow 0: 50 bytes in [0,0.5] alone, then shares 50/50. Remaining 50
  // bytes at 50 B/s -> finishes at 1.5.
  EXPECT_NEAR(t[0], 1.5, 1e-9);
  // Flow 1: 50 B/s in [0.5,1.5] = 50 bytes, then alone: 50 bytes at 100 B/s
  // -> finishes at 2.0.
  EXPECT_NEAR(t[1], 2.0, 1e-9);
}

TEST(FairShareTest, DepartureSpeedsUpRemainingFlow) {
  Simulation sim;
  FairShareServer link(sim, "net", 100.0, 100.0);
  std::vector<double> t(2, -1);
  consume_at(sim, link, 0.0, 50.0, t, 0);
  consume_at(sim, link, 0.0, 150.0, t, 1);
  sim.run();
  // Both share until flow 0 completes its 50 bytes at t=1.0; flow 1 then
  // has 100 bytes left at full rate -> t=2.0.
  EXPECT_NEAR(t[0], 1.0, 1e-9);
  EXPECT_NEAR(t[1], 2.0, 1e-9);
}

TEST(FairShareTest, ZeroWorkCompletesImmediately) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 1.0, 1.0);
  std::vector<double> t(1, -1);
  consume_at(sim, cpu, 0.0, 0.0, t, 0);
  sim.run();
  EXPECT_NEAR(t[0], 0.0, 1e-12);
}

TEST(FairShareTest, LoadIntegralTracksCustomerSeconds) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 1.0, 1.0);
  std::vector<double> t(2, -1);
  consume_at(sim, cpu, 0.0, 1.0, t, 0);
  consume_at(sim, cpu, 0.0, 1.0, t, 1);
  sim.run();
  // 2 customers for 2 seconds = 4 customer-seconds.
  EXPECT_NEAR(cpu.load_integral(), 4.0, 1e-9);
  // Saturation: busy the whole 2 seconds.
  EXPECT_NEAR(cpu.busy_integral(), 2.0, 1e-9);
  EXPECT_NEAR(cpu.work_served(), 2.0, 1e-9);
}

TEST(FairShareTest, BusyIntegralBelowOneWhenUnderParallelism) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 4.0, 1.0);  // 4 cores
  std::vector<double> t(1, -1);
  consume_at(sim, cpu, 0.0, 2.0, t, 0);
  sim.run();
  // One task on 4 cores: utilization 1/4 for 2 seconds.
  EXPECT_NEAR(cpu.busy_integral(), 0.5, 1e-9);
  EXPECT_NEAR(cpu.load_integral(), 2.0, 1e-9);
}

TEST(FairShareTest, ManyFlowsAllComplete) {
  Simulation sim;
  FairShareServer disk(sim, "disk", 10.0, 10.0);
  const int n = 50;
  std::vector<double> t(n, -1);
  for (int i = 0; i < n; ++i) {
    consume_at(sim, disk, 0.1 * i, 1.0 + 0.01 * i, t, static_cast<std::size_t>(i));
  }
  sim.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(t[static_cast<std::size_t>(i)], 0.0) << "flow " << i << " never finished";
  }
  EXPECT_EQ(disk.active(), 0);
}

TEST(UtilizationProbeTest, SamplesBusyFractionPerWindow) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 1.0, 1.0);
  UtilizationProbe probe(cpu);
  std::vector<double> t(1, -1);
  // Busy for [0, 2], idle afterwards.
  consume_at(sim, cpu, 0.0, 2.0, t, 0);
  sim.run();
  // Whole busy interval in one window.
  EXPECT_NEAR(probe.sample(2.0), 1.0, 1e-9);
  // Next window [2, 4] is pure idle.
  EXPECT_NEAR(probe.sample(4.0), 0.0, 1e-9);
  // Zero-length window reports 0 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(probe.sample(4.0), 0.0);
}

TEST(UtilizationProbeTest, PartialWindowIsFractional) {
  Simulation sim;
  FairShareServer cpu(sim, "cpu", 1.0, 1.0);
  UtilizationProbe probe(cpu);
  std::vector<double> t(1, -1);
  consume_at(sim, cpu, 0.0, 1.0, t, 0);  // busy [0, 1] only
  sim.run();
  // Window [0, 4] saw 1 busy second -> 25% utilization.
  EXPECT_NEAR(probe.sample(4.0), 0.25, 1e-9);
}

// Property: total work served equals total work submitted, for any mix.
class FairShareConservation : public ::testing::TestWithParam<int> {};

TEST_P(FairShareConservation, WorkIsConserved) {
  const int n = GetParam();
  Simulation sim;
  FairShareServer server(sim, "srv", 3.0, 1.5);
  std::vector<double> t(static_cast<std::size_t>(n), -1);
  double submitted = 0.0;
  for (int i = 0; i < n; ++i) {
    const double work = 0.5 + 0.37 * i;
    submitted += work;
    consume_at(sim, server, 0.2 * (i % 7), work, t, static_cast<std::size_t>(i));
  }
  sim.run();
  EXPECT_NEAR(server.work_served(), submitted, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FairShareConservation,
                         ::testing::Values(1, 2, 5, 13, 40));

}  // namespace
}  // namespace qadist::simnet
