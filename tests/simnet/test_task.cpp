#include "simnet/task.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simnet/process.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {
namespace {

Task<int> immediate(int v) { co_return v; }

Task<int> delayed_value(Simulation& sim, Seconds d, int v) {
  co_await Delay(sim, d);
  co_return v;
}

TEST(TaskTest, StartsEagerly) {
  bool started = false;
  const auto make = [&]() -> Task<int> {
    started = true;
    co_return 1;
  };
  const Task<int> t = make();
  EXPECT_TRUE(started);  // body ran before any co_await
  EXPECT_TRUE(t.done());
}

TEST(TaskTest, AwaitingACompletedTaskDoesNotSuspend) {
  Simulation sim;
  int got = 0;
  [](int& out) -> SimProcess { out = co_await immediate(7); }(got);
  EXPECT_EQ(got, 7);
}

TEST(TaskTest, AwaiterResumesWhenTheTaskFinishes) {
  Simulation sim;
  std::vector<double> log;
  int got = 0;
  [](Simulation& s, std::vector<double>& l, int& out) -> SimProcess {
    out = co_await delayed_value(s, 2.5, 42);
    l.push_back(s.now());
  }(sim, log, got);
  EXPECT_EQ(got, 0);  // still suspended
  sim.run();
  EXPECT_EQ(got, 42);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
}

TEST(TaskTest, NestedTasksComposeAcrossDelays) {
  Simulation sim;
  const auto outer = [](Simulation& s) -> Task<int> {
    const int a = co_await delayed_value(s, 1.0, 10);
    const int b = co_await delayed_value(s, 2.0, 20);
    co_return a + b;
  };
  int got = 0;
  double at = -1.0;
  [](Simulation& s, const auto& mk, int& out, double& t) -> SimProcess {
    out = co_await mk(s);
    t = s.now();
  }(sim, outer, got, at);
  sim.run();
  EXPECT_EQ(got, 30);
  EXPECT_DOUBLE_EQ(at, 3.0);
}

TEST(TaskTest, ManyConcurrentAwaitersOfSeparateTasks) {
  Simulation sim;
  std::vector<int> results(8, 0);
  for (int i = 0; i < 8; ++i) {
    [](Simulation& s, std::vector<int>& out, int slot) -> SimProcess {
      out[static_cast<std::size_t>(slot)] =
          co_await delayed_value(s, 1.0 + slot, slot * 11);
    }(sim, results, i);
  }
  sim.run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 11);
  }
}

}  // namespace
}  // namespace qadist::simnet
