#include "simnet/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qadist::simnet {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, EqualTimesFireInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule(5.0, [&] {
    sim.schedule(-3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(SimulationTest, NanDelayPanics) {
  // A NaN delay would silently corrupt the event-queue ordering (every
  // comparison against it is false), so it must die loudly instead.
  Simulation sim;
  EXPECT_DEATH(sim.schedule(std::nan(""), [] {}), "NaN delay");
  EXPECT_DEATH(sim.schedule_at(std::nan(""), [] {}), "NaN");
}

TEST(SimulationTest, RunUntilStopsEarly) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(SimulationTest, StepExecutesExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulationTest, ScheduleAtAbsoluteTime) {
  Simulation sim;
  double t = -1;
  sim.schedule_at(7.5, [&] { t = sim.now(); });
  sim.run();
  EXPECT_EQ(t, 7.5);
}

}  // namespace
}  // namespace qadist::simnet
