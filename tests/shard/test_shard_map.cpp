// ShardMap: rendezvous placement with replication, plus the failure
// lifecycle (fail -> rebuild/abort, rejoin -> validate -> ready). Pure
// bookkeeping tests; the simulated cost of rebuilds lives in the cluster
// tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "shard/config.hpp"
#include "shard/shard_map.hpp"

namespace qadist::shard {
namespace {

std::vector<NodeId> all_nodes(std::size_t n) {
  std::vector<NodeId> out(n);
  std::iota(out.begin(), out.end(), NodeId{0});
  return out;
}

std::vector<NodeId> live_without(std::size_t n, NodeId failed) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n; ++id) {
    if (id != failed) out.push_back(id);
  }
  return out;
}

TEST(ShardMapTest, FullReplicationPutsEveryShardEverywhere) {
  const ShardMap map(4, 3, 3);
  EXPECT_EQ(map.num_shards(), 4u);
  EXPECT_EQ(map.replication(), 3u);
  EXPECT_EQ(map.nodes(), 3u);
  for (ShardId s = 0; s < 4; ++s) {
    EXPECT_EQ(map.replicas(s).size(), 3u);
    EXPECT_EQ(map.ready_holders(s), all_nodes(3));
  }
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(map.replica_count(n), 4u);
    EXPECT_EQ(map.storage_bytes(n, 64_MB), 4 * 64_MB);
  }
}

TEST(ShardMapTest, ReplicationIsClampedToTheNodeCount) {
  // 0 and anything >= nodes both mean full replication.
  const ShardMap zero(4, 3, 0);
  const ShardMap over(4, 3, 8);
  EXPECT_EQ(zero.replication(), 3u);
  EXPECT_EQ(over.replication(), 3u);
  for (ShardId s = 0; s < 4; ++s) {
    EXPECT_EQ(zero.ready_holders(s), over.ready_holders(s));
  }
}

TEST(ShardMapTest, PartialPlacementIsDeterministicAndBalanced) {
  const ShardMap a(8, 6, 2);
  const ShardMap b(8, 6, 2);
  std::size_t total = 0;
  for (ShardId s = 0; s < 8; ++s) {
    ASSERT_EQ(a.replicas(s).size(), 2u);
    EXPECT_EQ(a.ready_holders(s), b.ready_holders(s));
    // Replicas are sorted by node id and all start ready.
    EXPECT_LT(a.replicas(s)[0].node, a.replicas(s)[1].node);
    for (const Replica& r : a.replicas(s)) {
      EXPECT_EQ(r.state, ReplicaState::kReady);
      EXPECT_TRUE(a.holds(r.node, s));
      EXPECT_TRUE(a.ready(r.node, s));
    }
    // The canonical copy source is one of the ready holders.
    const auto src = a.ready_source(s);
    ASSERT_TRUE(src.has_value());
    EXPECT_TRUE(a.ready(*src, s));
  }
  for (NodeId n = 0; n < 6; ++n) total += a.replica_count(n);
  EXPECT_EQ(total, 8u * 2u);  // every replica is accounted to one node
}

TEST(ShardMapTest, PlacementIsMembershipStable) {
  // Rendezvous property: shrinking the pool only moves replicas held by
  // the removed node; every other (shard, holder) pair is unchanged.
  const ShardMap big(16, 6, 2);
  const ShardMap small(16, 5, 2);  // node 5 never existed
  for (ShardId s = 0; s < 16; ++s) {
    for (const Replica& r : big.replicas(s)) {
      if (r.node == 5) continue;
      EXPECT_TRUE(small.holds(r.node, s))
          << "shard " << s << " moved off node " << r.node;
    }
  }
}

TEST(ShardMapTest, UnitsAreStripedRoundRobinOverShards) {
  const ShardMap map(3, 4, 2);
  EXPECT_EQ(map.shard_of_unit(0), 0u);
  EXPECT_EQ(map.shard_of_unit(4), 1u);
  EXPECT_EQ(map.shard_of_unit(11), 2u);
}

TEST(ShardMapTest, FailoverReservesARebuildPerLostShard) {
  ShardMap map(8, 6, 2);
  const NodeId failed = *map.ready_source(0);  // a node that holds shards
  const auto lost = map.shards_of(failed);
  ASSERT_FALSE(lost.empty());
  const auto plan = map.fail_node(failed, live_without(6, failed));
  // Every shard the node held still has a surviving replica (R=2), so
  // nothing is unavailable and each lost shard gets one rebuild task.
  EXPECT_TRUE(plan.unavailable.empty());
  ASSERT_EQ(plan.rebuilds.size(), lost.size());
  EXPECT_EQ(map.replica_count(failed), 0u);
  for (const auto& task : plan.rebuilds) {
    EXPECT_NE(task.target, failed);
    EXPECT_TRUE(map.holds(task.target, task.shard));
    EXPECT_FALSE(map.ready(task.target, task.shard));  // kRebuilding
    // A rebuilding copy already pins storage.
    EXPECT_EQ(map.replicas(task.shard).size(), 2u);
  }
  // Shards the failed node never held are untouched.
  for (ShardId s = 0; s < 8; ++s) {
    if (std::find(lost.begin(), lost.end(), s) != lost.end()) continue;
    EXPECT_EQ(map.ready_holders(s).size(), 2u);
  }
}

TEST(ShardMapTest, RebuildCompletionRestoresReadyReplication) {
  ShardMap map(8, 6, 2);
  const NodeId failed = *map.ready_source(1);
  const auto plan = map.fail_node(failed, live_without(6, failed));
  ASSERT_FALSE(plan.rebuilds.empty());
  for (const auto& task : plan.rebuilds) {
    map.complete_rebuild(task.shard, task.target);
    EXPECT_TRUE(map.ready(task.target, task.shard));
    EXPECT_EQ(map.ready_holders(task.shard).size(), 2u);
  }
  // Completing again is an idempotent no-op.
  if (!plan.rebuilds.empty()) {
    map.complete_rebuild(plan.rebuilds[0].shard, plan.rebuilds[0].target);
    EXPECT_EQ(map.ready_holders(plan.rebuilds[0].shard).size(), 2u);
  }
}

TEST(ShardMapTest, RebuildAbortDropsTheReservedReplica) {
  ShardMap map(8, 6, 2);
  const NodeId failed = *map.ready_source(0);  // a node that holds shards
  const auto plan = map.fail_node(failed, live_without(6, failed));
  ASSERT_FALSE(plan.rebuilds.empty());
  const auto& task = plan.rebuilds[0];
  map.abort_rebuild(task.shard, task.target);
  EXPECT_FALSE(map.holds(task.target, task.shard));
  EXPECT_EQ(map.ready_holders(task.shard).size(), 1u);  // under-replicated
  map.abort_rebuild(task.shard, task.target);  // idempotent
  EXPECT_EQ(map.ready_holders(task.shard).size(), 1u);
}

TEST(ShardMapTest, LastReplicaLossMakesTheShardUnavailable) {
  // R=1: the only holder failing leaves nothing to rebuild from.
  ShardMap map(4, 2, 1);
  const NodeId failed = *map.ready_source(0);
  const auto lost = map.shards_of(failed);
  const auto plan = map.fail_node(failed, live_without(2, failed));
  EXPECT_TRUE(plan.rebuilds.empty());
  EXPECT_EQ(plan.unavailable, lost);
  for (ShardId s : plan.unavailable) {
    EXPECT_TRUE(map.ready_holders(s).empty());
    EXPECT_FALSE(map.ready_source(s).has_value());
  }
}

TEST(ShardMapTest, RejoinValidatesTheStashedShardsBeforeServing) {
  ShardMap map(4, 2, 1);
  const NodeId failed = *map.ready_source(0);
  const auto lost = map.shards_of(failed);
  (void)map.fail_node(failed, live_without(2, failed));

  auto to_validate = map.begin_validation(failed);
  EXPECT_EQ(to_validate, lost);
  for (ShardId s : to_validate) {
    EXPECT_TRUE(map.holds(failed, s));
    EXPECT_FALSE(map.ready(failed, s));  // kValidating: not serving yet
    EXPECT_FALSE(map.ready_source(s).has_value());
  }
  EXPECT_EQ(map.complete_validation(failed), lost.size());
  for (ShardId s : lost) {
    EXPECT_TRUE(map.ready(failed, s));
    EXPECT_EQ(map.ready_source(s), failed);
  }
  // The stash was consumed: a second rejoin has nothing to validate.
  EXPECT_TRUE(map.begin_validation(failed).empty());
  EXPECT_EQ(map.complete_validation(failed), 0u);
}

TEST(ShardMapTest, ValidationReentersLostShardsEvenAfterRebuildElsewhere) {
  // A node crashes, its shards are rebuilt onto survivors, and THEN it
  // rejoins: its on-disk copies still re-enter as validating replicas.
  ShardMap map(8, 3, 2);
  const NodeId failed = 0;
  const auto lost = map.shards_of(failed);
  ASSERT_FALSE(lost.empty());
  const auto plan = map.fail_node(failed, live_without(3, failed));
  // With 3 nodes and R=2 there is exactly one spare per shard, so every
  // lost shard is rebuilt onto the one node that didn't hold it.
  ASSERT_EQ(plan.rebuilds.size(), lost.size());
  for (const auto& task : plan.rebuilds) {
    map.complete_rebuild(task.shard, task.target);
  }
  // Rejoin: the stash still re-enters as validating copies (R rises above
  // 2 until the cluster trims — acceptable: extra replicas only add reads).
  const auto to_validate = map.begin_validation(failed);
  EXPECT_EQ(to_validate, lost);
  EXPECT_EQ(map.complete_validation(failed), lost.size());
  for (ShardId s : lost) {
    EXPECT_GE(map.ready_holders(s).size(), 2u);
  }
}

TEST(ShardConfigTest, EffectiveReplicationAndPartialGating) {
  ShardConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_FALSE(cfg.partial(12));
  cfg.num_shards = 8;
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.effective_replication(12), 12u);  // replication=0: full
  EXPECT_FALSE(cfg.partial(12));
  cfg.replication = 2;
  EXPECT_EQ(cfg.effective_replication(12), 2u);
  EXPECT_TRUE(cfg.partial(12));
  EXPECT_EQ(cfg.effective_replication(2), 2u);
  EXPECT_FALSE(cfg.partial(2));  // R == nodes: unconstrained
}

}  // namespace
}  // namespace qadist::shard
