#pragma once

#include <memory>

#include "corpus/generator.hpp"
#include "qa/engine.hpp"

namespace qadist::testing {

/// Shared small world for pipeline-level tests: one corpus + engine +
/// question set, built once per test binary (engine construction indexes
/// the whole corpus, so rebuilding per-test would dominate runtimes).
struct TestWorld {
  corpus::GeneratedCorpus corpus;
  std::unique_ptr<qa::Engine> engine;
  std::vector<corpus::Question> questions;
};

inline const TestWorld& test_world() {
  static const TestWorld world = [] {
    TestWorld w;
    corpus::CorpusConfig config;
    config.seed = 7;
    config.num_documents = 300;
    config.vocabulary_size = 5000;
    w.corpus = corpus::generate_corpus(config);
    w.engine = std::make_unique<qa::Engine>(w.corpus);
    w.questions = corpus::generate_questions(w.corpus, 60, /*seed=*/11);
    return w;
  }();
  return world;
}

}  // namespace qadist::testing
