#pragma once

// Compatibility forward: the test-only mini JSON parser was promoted to
// src/obs/json_parse.hpp when the fuzz subsystem started parsing scenario
// files. Existing tests keep their qadist::testing spellings.

#include "obs/json_parse.hpp"

namespace qadist::testing {

using obs::JsonArray;
using obs::JsonObject;
using obs::JsonParser;
using obs::JsonValue;
using obs::parse_json;

}  // namespace qadist::testing
