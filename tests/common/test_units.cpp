#include "common/units.hpp"

#include <gtest/gtest.h>

namespace qadist {
namespace {

TEST(BandwidthTest, BitByteConversions) {
  const auto hundred_mbps = Bandwidth::from_mbps(100);
  EXPECT_DOUBLE_EQ(hundred_mbps.bytes_per_second, 12.5e6);
  EXPECT_DOUBLE_EQ(hundred_mbps.mbps(), 100.0);

  const auto gig = Bandwidth::from_gbps(1);
  EXPECT_DOUBLE_EQ(gig.bytes_per_second, 125e6);

  const auto raw = Bandwidth::from_bits_per_second(8e6);
  EXPECT_DOUBLE_EQ(raw.bytes_per_second, 1e6);

  const auto mbs = Bandwidth::from_megabytes_per_second(10);
  EXPECT_DOUBLE_EQ(mbs.mbps(), 80.0);
}

TEST(BandwidthTest, TransferTime) {
  const auto link = Bandwidth::from_mbps(100);  // 12.5 MB/s
  EXPECT_DOUBLE_EQ(link.transfer_time(12.5e6), 1.0);
  EXPECT_DOUBLE_EQ(link.transfer_time(0.0), 0.0);
}

TEST(ByteLiteralsTest, Values) {
  EXPECT_EQ(1_KB, 1024u);
  EXPECT_EQ(2_MB, 2u * 1024 * 1024);
  EXPECT_EQ(3_GB, 3ull * 1024 * 1024 * 1024);
}

}  // namespace
}  // namespace qadist
