#include "common/log.hpp"

#include <gtest/gtest.h>

namespace qadist {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, MacroCompilesAndFilters) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // With logging off the streaming expression must not be evaluated.
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return 42;
  };
  QADIST_LOG_INFO("test") << "value " << count();
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kDebug);
  QADIST_LOG_DEBUG("test") << "now evaluated " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, MessageBelowLevelDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  // These must be no-ops (manually verified by the filter logic; here we
  // only assert the calls are safe at every level).
  QADIST_LOG_DEBUG("t") << "dropped";
  QADIST_LOG_INFO("t") << "dropped";
  SUCCEED();
}

}  // namespace
}  // namespace qadist
