#include "common/table.hpp"

#include <gtest/gtest.h>

namespace qadist {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Module", "Time"});
  t.add_row({"QP", "1.2 %"});
  t.add_row({"AP", "69.7 %"});
  const auto out = t.render();
  EXPECT_NE(out.find("Module"), std::string::npos);
  EXPECT_NE(out.find("69.7 %"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, SeparatorNotCountedAsRow) {
  TextTable t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"N", "Value"});
  t.add_row({"1", "short"});
  t.add_row({"1000", "a much longer cell"});
  const auto out = t.render();
  // All lines between rules must have equal width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    auto end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const auto len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(TextTableTest, CellHelpers) {
  EXPECT_EQ(cell(3.14159), "3.14");
  EXPECT_EQ(cell(3.14159, 1), "3.1");
  EXPECT_EQ(cell_percent(0.697), "69.7 %");
}

}  // namespace
}  // namespace qadist
