#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qadist {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(1000, 1.1);
  double sum = 0.0;
  for (std::uint32_t k = 0; k < z.size(); ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfSumsToOneAcrossSupportsAndExponents) {
  // The normalization constant must hold over the whole (n, s) plane the
  // workload generators use, including the degenerate corners (single
  // rank, uniform exponent).
  for (const std::uint32_t n : {1u, 2u, 7u, 64u, 5000u}) {
    for (const double s : {0.0, 0.3, 1.0, 1.5, 2.5}) {
      ZipfDistribution z(n, s);
      double sum = 0.0;
      for (std::uint32_t k = 0; k < z.size(); ++k) sum += z.pmf(k);
      EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " s=" << s;
    }
  }
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution z(100, 1.0);
  for (std::uint32_t k = 1; k < z.size(); ++k) {
    EXPECT_LT(z.pmf(k), z.pmf(k - 1));
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (std::uint32_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, SingleRankAlwaysZero) {
  ZipfDistribution z(1, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  ZipfDistribution z(50, 1.0);
  Rng rng(77);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z(rng)];
  for (std::uint32_t k = 0; k < 5; ++k) {
    const double expected = z.pmf(k) * n;
    EXPECT_NEAR(counts[k], expected, expected * 0.05 + 30);
  }
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfDistribution z(7, 1.3);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z(rng), 7u);
}

// Property sweep: the head rank's mass grows with the exponent.
class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HeadMassGrowsWithExponent) {
  const double s = GetParam();
  ZipfDistribution lo(200, s);
  ZipfDistribution hi(200, s + 0.5);
  EXPECT_GT(hi.pmf(0), lo.pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace qadist
