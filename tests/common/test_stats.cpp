#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace qadist {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(99);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SamplesTest, QuantilesOfKnownSet) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SamplesTest, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SamplesTest, InsertAfterQueryResorts) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SamplesTest, QuantileOrFallsBackOnlyWhenEmpty) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.quantile_or(0.5, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(s.quantile_or(0.95, 0.0), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile_or(0.5, -1.0), 7.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.quantile_or(0.5, -1.0), 8.0);  // real interpolation
}

TEST(SamplesTest, SummaryMentionsCount) {
  Samples s;
  s.add(1.0);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(SamplesTest, ConstQuantileLeavesReservoirUnsorted) {
  // Regression: quantile() used to sort `values_` inside a const method
  // (mutable members), so a const view was secretly a writer. The const
  // path must now be pure.
  Samples s;
  s.add(5.0);
  s.add(1.0);
  s.add(3.0);
  const Samples& view = s;
  EXPECT_DOUBLE_EQ(view.quantile(0.5), 3.0);
  EXPECT_FALSE(view.is_sorted());  // untouched by the const query
  EXPECT_DOUBLE_EQ(view.min(), 1.0);
  EXPECT_DOUBLE_EQ(view.max(), 5.0);
  s.sort();
  EXPECT_TRUE(view.is_sorted());
  EXPECT_DOUBLE_EQ(view.quantile(0.5), 3.0);
}

TEST(SamplesTest, ConcurrentConstQuantilesAreRaceFree) {
  // TSan-level regression for the same bug: concurrent const readers of an
  // unsorted reservoir raced on the lazy sort. Each thread must now see a
  // consistent answer with no writes to the shared state.
  Samples s;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) s.add(rng.uniform(0.0, 100.0));
  const Samples& view = s;
  const double expected = view.quantile(0.95);
  std::vector<std::thread> readers;
  std::vector<double> results(8, 0.0);
  for (std::size_t t = 0; t < results.size(); ++t) {
    readers.emplace_back(
        [&view, &results, t] { results[t] = view.quantile(0.95); });
  }
  for (auto& r : readers) r.join();
  for (const double got : results) EXPECT_DOUBLE_EQ(got, expected);
  EXPECT_FALSE(view.is_sorted());
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(HistogramTest, NonFiniteSamplesTalliedNotBucketed) {
  // Regression: add() cast (x - lo)/width straight to ptrdiff_t, which is
  // UB for NaN/±inf (and for finite values past the integer range).
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.nonfinite(), 3u);
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) EXPECT_EQ(h.count(b), 0u);
  h.add(1e300);   // huge but finite: clamps to the last bucket, no UB
  h.add(-1e300);  // clamps to the first bucket
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.nonfinite(), 3u);
}

TEST(HistogramTest, AsciiRendersAllBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const auto art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace qadist
