#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace qadist {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  alpha\tbeta \n gamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[1], "beta");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(StringsTest, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_NE(format_bytes(3.5 * 1024 * 1024).find("MB"), std::string::npos);
}

}  // namespace
}  // namespace qadist
