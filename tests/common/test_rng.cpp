#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace qadist {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(7);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) ++seen[rng.below(5)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(RngTest, UniformU64Inclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_u64(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream must not replay the parent stream.
  Rng parent2(31);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedResets) {
  Rng rng(41);
  const auto first = rng();
  rng.reseed(41);
  EXPECT_EQ(rng(), first);
}

}  // namespace
}  // namespace qadist
