#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qadist::cache {
namespace {

struct Payload {
  int id = 0;
};

LruTtlCache<Payload> make_cache(std::size_t max_entries,
                                std::size_t max_bytes = 0,
                                Seconds ttl = 0.0) {
  BoundedCacheConfig config;
  config.max_entries = max_entries;
  config.max_bytes = max_bytes;
  config.ttl = ttl;
  return LruTtlCache<Payload>(config);
}

TEST(LruTtlCacheTest, EvictsLeastRecentlyUsedFirst) {
  auto cache = make_cache(3);
  cache.insert("a", {1}, 10, 0.0);
  cache.insert("b", {2}, 10, 1.0);
  cache.insert("c", {3}, 10, 2.0);
  EXPECT_EQ(cache.keys_by_age(), (std::vector<std::string>{"c", "b", "a"}));

  // Probing "a" promotes it, so the next eviction victim is "b".
  ASSERT_NE(cache.find("a", 3.0), nullptr);
  EXPECT_EQ(cache.keys_by_age(), (std::vector<std::string>{"a", "c", "b"}));

  cache.insert("d", {4}, 10, 4.0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains("b", 4.0));
  EXPECT_TRUE(cache.contains("a", 4.0));
  EXPECT_EQ(cache.stats().evictions_entries, 1u);
  EXPECT_EQ(cache.keys_by_age(), (std::vector<std::string>{"d", "a", "c"}));
}

TEST(LruTtlCacheTest, UpdateRefreshesRecencyAndBytes) {
  auto cache = make_cache(2);
  cache.insert("a", {1}, 10, 0.0);
  cache.insert("b", {2}, 20, 1.0);
  EXPECT_EQ(cache.bytes(), 30u);

  cache.insert("a", {7}, 50, 2.0);  // refresh: new value, new footprint
  EXPECT_EQ(cache.bytes(), 70u);
  EXPECT_EQ(cache.stats().updates, 1u);
  EXPECT_EQ(cache.keys_by_age(), (std::vector<std::string>{"a", "b"}));
  const auto* hit = cache.find("a", 2.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 7);
}

TEST(LruTtlCacheTest, TtlExpiresLazilyOnProbe) {
  auto cache = make_cache(4, 0, /*ttl=*/10.0);
  cache.insert("a", {1}, 5, 0.0);
  EXPECT_TRUE(cache.contains("a", 9.9));
  EXPECT_NE(cache.find("a", 9.9), nullptr);

  // At exactly ttl the entry is stale: the probe drops it and misses.
  EXPECT_FALSE(cache.contains("a", 10.0));
  EXPECT_EQ(cache.find("a", 10.0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A refresh restarts the clock.
  cache.insert("b", {2}, 5, 0.0);
  cache.insert("b", {2}, 5, 8.0);
  EXPECT_TRUE(cache.contains("b", 12.0));
}

TEST(LruTtlCacheTest, PeekStaleIgnoresTtlAndCountsNothing) {
  auto cache = make_cache(4, 0, /*ttl=*/10.0);
  cache.insert("a", {1}, 5, 0.0);
  cache.insert("b", {2}, 5, 0.0);

  // Well past the TTL: a normal probe would drop the entry, but the
  // degraded-answer fallback still sees it — without promoting it or
  // touching the hit/miss tallies.
  const auto* stale = cache.peek_stale("a");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->id, 1);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.keys_by_age(), (std::vector<std::string>{"b", "a"}));

  EXPECT_EQ(cache.peek_stale("absent"), nullptr);

  // Once the entry is actually dropped (by a probe), nothing to peek.
  EXPECT_EQ(cache.find("a", 20.0), nullptr);
  EXPECT_EQ(cache.peek_stale("a"), nullptr);
}

TEST(LruTtlCacheTest, ByteBudgetEvictsFromLruEnd) {
  auto cache = make_cache(100, /*max_bytes=*/100);
  cache.insert("a", {1}, 40, 0.0);
  cache.insert("b", {2}, 40, 1.0);
  cache.insert("c", {3}, 40, 2.0);  // 120 bytes: "a" must go
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_FALSE(cache.contains("a", 2.0));
  EXPECT_EQ(cache.stats().evictions_bytes, 1u);
}

TEST(LruTtlCacheTest, OversizedEntryIsRejectedNotAdmitted) {
  auto cache = make_cache(100, /*max_bytes=*/100);
  cache.insert("small", {1}, 60, 0.0);
  cache.insert("huge", {2}, 101, 1.0);  // bigger than the whole budget
  EXPECT_FALSE(cache.contains("huge", 1.0));
  // The resident entry survives — admitting the oversized one would have
  // flushed the cache for a guaranteed-useless resident.
  EXPECT_TRUE(cache.contains("small", 1.0));
  EXPECT_EQ(cache.stats().rejected_oversize, 1u);
  EXPECT_EQ(cache.stats().evictions(), 0u);
}

TEST(LruTtlCacheTest, ClearCountsInvalidationsSeparately) {
  auto cache = make_cache(4);
  cache.insert("a", {1}, 5, 0.0);
  cache.insert("b", {2}, 5, 0.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().evictions(), 0u);
  EXPECT_FALSE(cache.contains("a", 0.0));
}

TEST(LruTtlCacheTest, DisabledCacheAdmitsNothing) {
  auto cache = make_cache(0);
  cache.insert("a", {1}, 5, 0.0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("a", 0.0), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(LruTtlCacheTest, EraseRemovesOneKey) {
  auto cache = make_cache(4);
  cache.insert("a", {1}, 5, 0.0);
  cache.insert("b", {2}, 7, 0.0);
  EXPECT_TRUE(cache.erase("a"));
  EXPECT_FALSE(cache.erase("a"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 7u);
}

TEST(LruTtlCacheTest, HitRateTracksProbes) {
  auto cache = make_cache(4);
  cache.insert("a", {1}, 5, 0.0);
  (void)cache.find("a", 0.0);
  (void)cache.find("a", 0.0);
  (void)cache.find("missing", 0.0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 2.0 / 3.0);
}

}  // namespace
}  // namespace qadist::cache
