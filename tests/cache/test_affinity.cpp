#include "cache/affinity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cache/question_key.hpp"

namespace qadist::cache {
namespace {

TEST(RendezvousTest, EmptyMemberSetHasNoPick) {
  EXPECT_FALSE(rendezvous_pick(42, {}).has_value());
}

TEST(RendezvousTest, DeterministicAndOrderIndependent) {
  const std::vector<std::uint32_t> forward = {0, 1, 2, 3, 4};
  const std::vector<std::uint32_t> shuffled = {3, 0, 4, 2, 1};
  for (std::uint64_t sig = 1; sig < 200; ++sig) {
    const auto a = rendezvous_pick(sig, forward);
    const auto b = rendezvous_pick(sig, shuffled);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, *b) << "signature " << sig;
  }
}

TEST(RendezvousTest, RemovingANodeOnlyMovesItsOwnKeys) {
  const std::vector<std::uint32_t> full = {0, 1, 2, 3};
  const std::vector<std::uint32_t> without2 = {0, 1, 3};
  for (std::uint64_t sig = 1; sig < 500; ++sig) {
    const auto before = rendezvous_pick(sig, full);
    const auto after = rendezvous_pick(sig, without2);
    ASSERT_TRUE(before.has_value() && after.has_value());
    if (*before != 2) {
      // Keys owned by a surviving node must not move — the property that
      // keeps every other node's cache warm through a membership change.
      EXPECT_EQ(*after, *before) << "signature " << sig;
    } else {
      EXPECT_NE(*after, 2u);
    }
  }
}

TEST(RendezvousTest, SpreadsSignaturesAcrossMembers) {
  const std::vector<std::uint32_t> members = {0, 1, 2, 3};
  std::map<std::uint32_t, int> counts;
  constexpr int kKeys = 2000;
  for (std::uint64_t sig = 0; sig < kKeys; ++sig) {
    counts[*rendezvous_pick(question_signature(std::to_string(sig)),
                            members)]++;
  }
  // Every member owns a healthy share (exactly uniform would be 500 each).
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, kKeys / 8) << "node " << node;
    EXPECT_LT(count, kKeys / 2) << "node " << node;
  }
  EXPECT_EQ(counts.size(), members.size());
}

}  // namespace
}  // namespace qadist::cache
