#include "cache/question_key.hpp"

#include <gtest/gtest.h>

namespace qadist::cache {
namespace {

TEST(QuestionKeyTest, NormalizationCanonicalizesVariants) {
  EXPECT_EQ(normalize_question("Who invented the telephone?"),
            "who invented the telephone");
  EXPECT_EQ(normalize_question("  WHO   invented\tthe  TELEPHONE!! "),
            "who invented the telephone");
  EXPECT_EQ(normalize_question("who, invented; the: telephone"),
            "who invented the telephone");
}

TEST(QuestionKeyTest, NormalizationKeepsDistinctQuestionsDistinct) {
  EXPECT_NE(normalize_question("who invented the telephone"),
            normalize_question("who invented the telegraph"));
}

TEST(QuestionKeyTest, EmptyAndPunctuationOnlyNormalizeToEmpty) {
  EXPECT_EQ(normalize_question(""), "");
  EXPECT_EQ(normalize_question("  ?!,. "), "");
}

TEST(QuestionKeyTest, SignatureIsStableAcrossVariantSpellings) {
  const auto a = question_signature(
      normalize_question("Who invented the telephone?"));
  const auto b = question_signature(
      normalize_question("who invented  the telephone"));
  EXPECT_EQ(a, b);
  const auto c = question_signature(
      normalize_question("who invented the telegraph"));
  EXPECT_NE(a, c);
}

TEST(QuestionKeyTest, SignatureMatchesFnv1aReference) {
  // FNV-1a 64-bit of the empty string is the offset basis; of "a" it is
  // one multiply-xor step. Pins the hash so the affinity assignment (and
  // therefore which node caches which question) never silently changes.
  EXPECT_EQ(question_signature(""), 14695981039346656037ull);
  EXPECT_EQ(question_signature("a"), 12638187200555641996ull);
}

}  // namespace
}  // namespace qadist::cache
