#include <gtest/gtest.h>

#include "model/inter_question.hpp"
#include "model/intra_question.hpp"

namespace qadist::model {
namespace {

// ----------------------------------------------------- intra-question

IntraQuestionParams intra_with(double disk_mbps, double net_mbps) {
  IntraQuestionParams p;
  p.disk = Bandwidth::from_mbps(disk_mbps);
  p.net = Bandwidth::from_mbps(net_mbps);
  return p;
}

TEST(IntraModelTest, ReproducesPaperTable4) {
  // Paper Table 4: practical processor limits and speedups for the
  // disk x network bandwidth grid. Our calibrated parameters must land
  // within a few percent of every cell.
  struct Cell {
    double disk_mbps, net_mbps, n_max, speedup;
  };
  const Cell cells[] = {
      {100, 1, 17, 8.65},     {100, 10, 64, 32.84},  {100, 100, 89, 45.75},
      {100, 1000, 93, 47.73}, {250, 1, 13, 6.61},    {250, 10, 49, 25.30},
      {250, 100, 68, 35.33},  {250, 1000, 71, 36.87}, {500, 1, 12, 6.01},
      {500, 10, 43, 22.49},   {500, 100, 61, 31.81}, {500, 1000, 64, 33.28},
      {1000, 1, 11, 5.59},    {1000, 10, 41, 21.35}, {1000, 100, 57, 29.90},
      {1000, 1000, 60, 31.34},
  };
  for (const auto& cell : cells) {
    const IntraQuestionModel m(intra_with(cell.disk_mbps, cell.net_mbps));
    EXPECT_NEAR(m.n_max(), cell.n_max, cell.n_max * 0.08)
        << "disk=" << cell.disk_mbps << " net=" << cell.net_mbps;
    EXPECT_NEAR(m.speedup_at_n_max(), cell.speedup, cell.speedup * 0.08)
        << "disk=" << cell.disk_mbps << " net=" << cell.net_mbps;
  }
}

TEST(IntraModelTest, SpeedupMonotoneInN) {
  const IntraQuestionModel m(intra_with(250, 100));
  double prev = 0.0;
  for (double n = 1; n <= 200; n += 1) {
    const double s = m.speedup(n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(IntraModelTest, SpeedupBoundedByAsymptote) {
  const IntraQuestionModel m(intra_with(250, 100));
  const double asymptote = m.t1() / m.t_seq();
  EXPECT_LT(m.speedup(1e7), asymptote);
  EXPECT_GT(m.speedup(1e7), 0.99 * asymptote);
}

TEST(IntraModelTest, SpeedupAtNmaxIsHalfAsymptote) {
  const IntraQuestionModel m(intra_with(500, 10));
  EXPECT_NEAR(m.speedup(m.n_max()), m.speedup_at_n_max(), 1e-9);
  EXPECT_NEAR(m.speedup_at_n_max(), 0.5 * m.t1() / m.t_seq(), 1e-9);
}

TEST(IntraModelTest, FasterNetworkRaisesNmax) {
  // Fig. 9(a): higher network bandwidth -> less partitioning overhead ->
  // more useful processors.
  EXPECT_LT(IntraQuestionModel(intra_with(250, 1)).n_max(),
            IntraQuestionModel(intra_with(250, 100)).n_max());
}

TEST(IntraModelTest, FasterDiskLowersSpeedup) {
  // Fig. 9(b): higher disk bandwidth shrinks the parallelizable part, so
  // the relative overhead grows and the speedup drops.
  EXPECT_GT(IntraQuestionModel(intra_with(100, 1000)).speedup(50),
            IntraQuestionModel(intra_with(1000, 1000)).speedup(50));
}

TEST(IntraModelTest, T1HasNoPartitioningOverhead) {
  const IntraQuestionModel m(intra_with(250, 1));  // huge overhead if paid
  EXPECT_LT(m.t1(), m.t_n(1));  // the 1-node distributed run pays it
}

// ----------------------------------------------------- inter-question

InterQuestionParams inter_with(double net_mbps) {
  InterQuestionParams p;
  p.net = Bandwidth::from_mbps(net_mbps);
  return p;
}

TEST(InterModelTest, GigabitEfficiencyAt1000Nodes) {
  // Paper Sec. 5.1: "for a 1 Gbps network the system efficiency is
  // approximately 0.9 for 1000 processors."
  const InterQuestionModel m(inter_with(1000));
  EXPECT_NEAR(m.efficiency(1000), 0.9, 0.03);
}

TEST(InterModelTest, HundredMbpsEfficiencyAt100Nodes) {
  // Paper: "efficiency 0.9 for 100 processors and a 100 Mbps network."
  const InterQuestionModel m(inter_with(100));
  EXPECT_NEAR(m.efficiency(100), 0.9, 0.03);
}

TEST(InterModelTest, SpeedupGrowsWithBandwidth) {
  for (double n : {100.0, 500.0, 1000.0}) {
    EXPECT_LT(InterQuestionModel(inter_with(10)).speedup(n),
              InterQuestionModel(inter_with(100)).speedup(n));
    EXPECT_LT(InterQuestionModel(inter_with(100)).speedup(n),
              InterQuestionModel(inter_with(1000)).speedup(n));
  }
}

TEST(InterModelTest, EfficiencyDecreasesWithN) {
  const InterQuestionModel m(inter_with(100));
  double prev = 1.1;
  for (double n : {1.0, 10.0, 100.0, 1000.0}) {
    const double e = m.efficiency(n);
    EXPECT_LT(e, prev);
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

TEST(InterModelTest, SpeedupBelowIdeal) {
  const InterQuestionModel m(inter_with(1000));
  for (double n : {1.0, 16.0, 128.0, 1024.0}) {
    EXPECT_LT(m.speedup(n), n);
    EXPECT_GT(m.speedup(n), 0.0);
  }
}

TEST(InterModelTest, MaxProcessorsAtEfficiency) {
  const InterQuestionModel m(inter_with(1000));
  const double n90 = m.max_processors_at_efficiency(0.9);
  // Consistency: efficiency at the bound is the target, just above it not.
  EXPECT_GE(m.efficiency(n90), 0.9 - 1e-6);
  EXPECT_LT(m.efficiency(n90 * 1.01), 0.9);
  // The paper's claim: ~0.9 efficiency at 1000 processors on 1 Gbps.
  EXPECT_NEAR(n90, 1000.0, 200.0);
  // A slower network supports far fewer processors at the same bar.
  EXPECT_LT(InterQuestionModel(inter_with(10)).max_processors_at_efficiency(0.9),
            n90 / 5);
}

TEST(InterModelTest, OverheadDecomposition) {
  const InterQuestionModel m(inter_with(100));
  const double n = 64;
  EXPECT_NEAR(m.distribution_overhead(n),
              m.monitoring_overhead(n) + m.dispatch_overhead(n) +
                  m.migration_overhead(n),
              1e-12);
  // Migration traffic dominates monitoring and dispatch at scale.
  EXPECT_GT(m.migration_overhead(n), m.monitoring_overhead(n));
  EXPECT_GT(m.migration_overhead(n), m.dispatch_overhead(n));
}

}  // namespace
}  // namespace qadist::model
