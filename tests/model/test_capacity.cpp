#include "model/capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qadist::model {
namespace {

CapacityPlanParams baseline() {
  CapacityPlanParams p;
  p.target_qps = 0.05;
  p.mean_service_seconds = 94.0;
  p.service_cv2 = 0.25;
  p.slo_p95_seconds = 400.0;
  p.overhead.T = p.mean_service_seconds;
  return p;
}

TEST(CapacityPlannerTest, EffectiveServiceGrowsWithClusterSize) {
  const CapacityPlanner planner(baseline());
  // T_eff(N) = T + T_distrib(N): the distribution overhead only adds.
  EXPECT_GE(planner.effective_service_seconds(1), 94.0);
  EXPECT_GT(planner.effective_service_seconds(64),
            planner.effective_service_seconds(4));
}

TEST(CapacityPlannerTest, WaitProbabilityIsAProbabilityAndShrinksWithNodes) {
  const CapacityPlanner planner(baseline());
  double prev = 1.1;
  for (std::size_t n = 5; n <= 40; ++n) {
    const double p = planner.wait_probability(n);
    EXPECT_GE(p, 0.0) << n;
    EXPECT_LE(p, 1.0) << n;
    EXPECT_LE(p, prev) << n;
    prev = p;
  }
}

TEST(CapacityPlannerTest, SingleServerMatchesMm1) {
  // Erlang C at c = 1 collapses to the M/M/1 result P(wait) = rho.
  auto p = baseline();
  p.target_qps = 0.005;  // rho < 1 on one node even with overhead
  const CapacityPlanner planner(p);
  EXPECT_NEAR(planner.wait_probability(1), planner.utilization(1), 1e-12);
}

TEST(CapacityPlannerTest, MinNodesSatisfiesItsOwnConstraints) {
  const CapacityPlanner planner(baseline());
  const auto n = planner.min_nodes();
  ASSERT_TRUE(n.has_value());
  EXPECT_LE(planner.utilization(*n), planner.params().max_utilization);
  EXPECT_LE(planner.predicted_p95_seconds(*n),
            planner.params().slo_p95_seconds);
  if (*n > 1) {
    // Minimality: one node fewer violates a constraint.
    const bool smaller_ok =
        planner.utilization(*n - 1) <= planner.params().max_utilization &&
        planner.predicted_p95_seconds(*n - 1) <=
            planner.params().slo_p95_seconds;
    EXPECT_FALSE(smaller_ok);
  }
}

TEST(CapacityPlannerTest, MinNodesMonotoneInTrafficAndSlo) {
  auto p = baseline();
  const CapacityPlanner base(p);
  p.target_qps *= 3.0;
  const CapacityPlanner busier(p);
  ASSERT_TRUE(base.min_nodes().has_value());
  ASSERT_TRUE(busier.min_nodes().has_value());
  EXPECT_GE(*busier.min_nodes(), *base.min_nodes());

  auto tight = baseline();
  tight.slo_p95_seconds = 180.0;  // still above the unloaded p95 (~171 s)
  const CapacityPlanner tighter(tight);
  ASSERT_TRUE(tighter.min_nodes().has_value());
  EXPECT_GE(*tighter.min_nodes(), *base.min_nodes());
}

TEST(CapacityPlannerTest, BurstierArrivalsNeedAtLeastAsManyNodes) {
  const CapacityPlanner calm(baseline());
  auto p = baseline();
  p.peak_to_mean = 2.5;
  p.interarrival_cv2 = 4.0;
  const CapacityPlanner bursty(p);
  ASSERT_TRUE(calm.min_nodes().has_value());
  ASSERT_TRUE(bursty.min_nodes().has_value());
  EXPECT_GT(*bursty.min_nodes(), *calm.min_nodes());
}

TEST(CapacityPlannerTest, UnreachableSloReturnsNothing) {
  auto p = baseline();
  p.slo_p95_seconds = 50.0;  // below the unloaded service p95 (~117 s)
  const CapacityPlanner planner(p);
  EXPECT_FALSE(planner.min_nodes().has_value());
}

TEST(CapacityPlannerTest, ExplicitServiceP95OverridesTheDerivedTail) {
  auto p = baseline();
  p.service_p95_seconds = 100.0;
  const CapacityPlanner planner(p);
  // At large N nothing queues, so the predicted p95 is the unloaded p95.
  EXPECT_DOUBLE_EQ(planner.predicted_p95_seconds(200), 100.0);

  const CapacityPlanner derived(baseline());
  const double tail = 94.0 * (1.0 + 1.645 * std::sqrt(0.25));
  EXPECT_DOUBLE_EQ(derived.predicted_p95_seconds(200), tail);
}

TEST(CapacityPlannerTest, UnstableConfigurationsPredictUnboundedWaits) {
  const CapacityPlanner planner(baseline());
  // One node cannot absorb 0.05 qps of 94 s questions (rho ~ 4.7).
  EXPECT_DOUBLE_EQ(planner.wait_probability(1), 1.0);
  EXPECT_GT(planner.predicted_p95_seconds(1),
            1e3 * planner.params().slo_p95_seconds);
}

}  // namespace
}  // namespace qadist::model
