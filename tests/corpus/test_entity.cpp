#include "corpus/entity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qadist::corpus {
namespace {

TEST(GazetteerTest, AddAndLookupIsCaseNormalized) {
  Gazetteer g;
  g.add("Port Amsen", EntityType::kLocation);
  EXPECT_EQ(g.lookup("port amsen"), EntityType::kLocation);
  EXPECT_FALSE(g.lookup("Port Amsen").has_value());  // keys are lowercase
  EXPECT_FALSE(g.lookup("port").has_value());
  EXPECT_EQ(g.size(), 1u);
}

TEST(GazetteerTest, ReinsertOverwritesType) {
  Gazetteer g;
  g.add("Amsen", EntityType::kLocation);
  g.add("Amsen", EntityType::kPerson);
  EXPECT_EQ(g.lookup("amsen"), EntityType::kPerson);
  EXPECT_EQ(g.size(), 1u);
}

TEST(GazetteerTest, MaxTokensTracksLongestEntry) {
  Gazetteer g;
  EXPECT_EQ(g.max_tokens(), 0u);
  g.add("Amsen", EntityType::kLocation);
  EXPECT_EQ(g.max_tokens(), 1u);
  g.add("the Amsen Lighthouse", EntityType::kLocation);
  EXPECT_EQ(g.max_tokens(), 3u);
  g.add("Bo Li", EntityType::kPerson);
  EXPECT_EQ(g.max_tokens(), 3u);  // stays at the max
}

TEST(GazetteerTest, SurfacesOfFiltersByType) {
  Gazetteer g;
  g.add("Port Amsen", EntityType::kLocation);
  g.add("Lake Tarnin", EntityType::kLocation);
  g.add("Doran Veltis", EntityType::kPerson);
  auto locations = g.surfaces_of(EntityType::kLocation);
  std::sort(locations.begin(), locations.end());
  EXPECT_EQ(locations,
            (std::vector<std::string>{"lake tarnin", "port amsen"}));
  EXPECT_EQ(g.surfaces_of(EntityType::kDisease).size(), 0u);
}

TEST(EntityTypeTest, AllTypesHaveNames) {
  for (int t = 0; t < kEntityTypeCount; ++t) {
    EXPECT_FALSE(to_string(static_cast<EntityType>(t)).empty());
  }
  EXPECT_EQ(to_string(EntityType::kUnknown), "UNKNOWN");
  EXPECT_EQ(to_string(EntityType::kLocation), "LOCATION");
}

}  // namespace
}  // namespace qadist::corpus
