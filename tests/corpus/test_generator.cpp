#include "corpus/generator.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "corpus/fact.hpp"

namespace qadist::corpus {
namespace {

CorpusConfig small_config() {
  CorpusConfig c;
  c.seed = 3;
  c.num_documents = 120;
  c.vocabulary_size = 2000;
  return c;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto a = generate_corpus(small_config());
  const auto b = generate_corpus(small_config());
  ASSERT_EQ(a.collection.size(), b.collection.size());
  ASSERT_EQ(a.facts.size(), b.facts.size());
  EXPECT_EQ(a.collection.document(5).paragraphs,
            b.collection.document(5).paragraphs);
  EXPECT_EQ(a.facts[0].subject, b.facts[0].subject);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate_corpus(cfg);
  cfg.seed = 4;
  const auto b = generate_corpus(cfg);
  EXPECT_NE(a.collection.document(0).paragraphs,
            b.collection.document(0).paragraphs);
}

TEST(GeneratorTest, FactSentencePresentInNamedParagraph) {
  const auto corpus = generate_corpus(small_config());
  ASSERT_FALSE(corpus.facts.empty());
  for (const auto& fact : corpus.facts) {
    const auto& doc = corpus.collection.document(fact.doc);
    ASSERT_LT(fact.paragraph, doc.paragraphs.size());
    const auto& text = doc.paragraphs[fact.paragraph];
    EXPECT_NE(text.find(fact.subject), std::string::npos)
        << "subject '" << fact.subject << "' missing from its paragraph";
    EXPECT_NE(text.find(fact.object), std::string::npos)
        << "object '" << fact.object << "' missing from its paragraph";
  }
}

TEST(GeneratorTest, SubjectsAreUnique) {
  const auto corpus = generate_corpus(small_config());
  std::set<std::string> subjects;
  for (const auto& fact : corpus.facts) {
    EXPECT_TRUE(subjects.insert(fact.subject).second)
        << "duplicate subject " << fact.subject;
  }
}

TEST(GeneratorTest, GazetteerKnowsPooledAnswers) {
  const auto corpus = generate_corpus(small_config());
  for (const auto& fact : corpus.facts) {
    const auto type = answer_type_of(fact.relation);
    if (type == EntityType::kDate || type == EntityType::kQuantity ||
        type == EntityType::kMoney) {
      continue;  // pattern-recognized, not gazetteer entries
    }
    const auto found = corpus.gazetteer.lookup(to_lower(fact.object));
    ASSERT_TRUE(found.has_value()) << fact.object;
    EXPECT_EQ(*found, type);
  }
}

TEST(GeneratorTest, DocumentLengthsVary) {
  const auto corpus = generate_corpus(small_config());
  std::size_t min_p = SIZE_MAX, max_p = 0;
  for (const auto& doc : corpus.collection.documents()) {
    min_p = std::min(min_p, doc.paragraphs.size());
    max_p = std::max(max_p, doc.paragraphs.size());
  }
  // The lognormal tail should make lengths spread by at least 3x.
  EXPECT_GE(max_p, 3 * std::max<std::size_t>(min_p, 1));
}

TEST(QuestionGenTest, QuestionsCarryGroundTruth) {
  const auto corpus = generate_corpus(small_config());
  const auto questions = generate_questions(corpus, 20, 99);
  ASSERT_FALSE(questions.empty());
  for (const auto& q : questions) {
    EXPECT_FALSE(q.text.empty());
    EXPECT_FALSE(q.gold_answer.empty());
    EXPECT_NE(q.gold_type, EntityType::kUnknown);
    EXPECT_LT(q.gold_doc, corpus.collection.size());
  }
}

TEST(QuestionGenTest, DistinctFactsNoDuplicates) {
  const auto corpus = generate_corpus(small_config());
  const auto questions = generate_questions(corpus, 1000, 99);
  EXPECT_LE(questions.size(), corpus.facts.size());
  std::set<std::string> texts;
  for (const auto& q : questions) {
    EXPECT_TRUE(texts.insert(q.text).second) << "duplicate " << q.text;
  }
}

TEST(QuestionGenTest, DeterministicInSeed) {
  const auto corpus = generate_corpus(small_config());
  const auto a = generate_questions(corpus, 10, 5);
  const auto b = generate_questions(corpus, 10, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST(FactTest, AnswerTypeCoversAllRelations) {
  for (int r = 0; r < kRelationCount; ++r) {
    const auto rel = static_cast<Relation>(r);
    EXPECT_NE(answer_type_of(rel), EntityType::kUnknown);
    EXPECT_FALSE(to_string(rel).empty());
  }
}

TEST(FactTest, QuestionTextMentionsSubject) {
  Fact f;
  f.subject = "the Amsen Lighthouse";
  f.object = "Port Varen";
  for (int r = 0; r < kRelationCount; ++r) {
    f.relation = static_cast<Relation>(r);
    EXPECT_NE(render_question_text(f).find(f.subject), std::string::npos);
    EXPECT_NE(render_fact_sentence(f).find(f.object), std::string::npos);
  }
}

}  // namespace
}  // namespace qadist::corpus
