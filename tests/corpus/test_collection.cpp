#include "corpus/collection.hpp"

#include <gtest/gtest.h>

namespace qadist::corpus {
namespace {

Collection make_collection(std::uint32_t docs, std::uint32_t paragraphs_each) {
  Collection c;
  for (std::uint32_t i = 0; i < docs; ++i) {
    Document d;
    d.id = i;
    d.title = "doc " + std::to_string(i);
    for (std::uint32_t p = 0; p < paragraphs_each; ++p) {
      d.paragraphs.push_back("text " + std::to_string(i) + " " +
                             std::to_string(p));
    }
    c.add(std::move(d));
  }
  return c;
}

TEST(CollectionTest, CountsParagraphsAndBytes) {
  const auto c = make_collection(3, 2);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.total_paragraphs(), 6u);
  EXPECT_GT(c.total_bytes(), 0u);
}

TEST(CollectionTest, ParagraphLookup) {
  const auto c = make_collection(3, 2);
  EXPECT_EQ(c.paragraph(ParagraphRef{1, 0}), "text 1 0");
  EXPECT_EQ(c.paragraph(ParagraphRef{2, 1}), "text 2 1");
}

TEST(CollectionTest, ParagraphRefOrdering) {
  EXPECT_LT((ParagraphRef{0, 5}), (ParagraphRef{1, 0}));
  EXPECT_LT((ParagraphRef{1, 0}), (ParagraphRef{1, 1}));
  EXPECT_EQ((ParagraphRef{2, 3}), (ParagraphRef{2, 3}));
}

TEST(SplitCollectionTest, CoversEveryDocumentOnce) {
  const auto c = make_collection(10, 1);
  const auto subs = split_collection(c, 3);
  ASSERT_EQ(subs.size(), 3u);
  std::vector<int> seen(10, 0);
  for (const auto& sub : subs) {
    for (DocId id = sub.first(); id < sub.last(); ++id) ++seen[id];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SplitCollectionTest, NearEqualSizes) {
  const auto c = make_collection(10, 1);
  const auto subs = split_collection(c, 3);
  for (const auto& sub : subs) {
    EXPECT_GE(sub.size(), 3u);
    EXPECT_LE(sub.size(), 4u);
  }
}

TEST(SplitCollectionTest, MoreSplitsThanDocsYieldsEmpties) {
  const auto c = make_collection(2, 1);
  const auto subs = split_collection(c, 5);
  ASSERT_EQ(subs.size(), 5u);
  std::size_t total = 0;
  for (const auto& sub : subs) total += sub.size();
  EXPECT_EQ(total, 2u);
}

TEST(SplitCollectionTest, SingleSplitIsWholeCollection) {
  const auto c = make_collection(4, 2);
  const auto subs = split_collection(c, 1);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].size(), 4u);
  EXPECT_EQ(subs[0].total_bytes(), c.total_bytes());
}

TEST(SubCollectionTest, ContainsAndLookup) {
  const auto c = make_collection(6, 1);
  const SubCollection sub(&c, 2, 4);
  EXPECT_TRUE(sub.contains(2));
  EXPECT_TRUE(sub.contains(3));
  EXPECT_FALSE(sub.contains(4));
  EXPECT_FALSE(sub.contains(1));
  EXPECT_EQ(sub.document(2).id, 2u);
}

}  // namespace
}  // namespace qadist::corpus
