#include "corpus/name_forge.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace qadist::corpus {
namespace {

NameForge make_forge(std::uint64_t seed = 1) { return NameForge(Rng(seed)); }

TEST(NameForgeTest, Deterministic) {
  NameForge a = make_forge(5);
  NameForge b = make_forge(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.person(), b.person());
}

TEST(NameForgeTest, StemIsCapitalized) {
  NameForge forge = make_forge();
  for (int i = 0; i < 50; ++i) {
    const auto s = forge.stem();
    ASSERT_FALSE(s.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s[0]))) << s;
  }
}

TEST(NameForgeTest, PersonHasTwoWords) {
  NameForge forge = make_forge();
  for (int i = 0; i < 20; ++i) {
    const auto p = forge.person();
    EXPECT_NE(p.find(' '), std::string::npos) << p;
  }
}

TEST(NameForgeTest, DateLooksLikeADate) {
  NameForge forge = make_forge();
  for (int i = 0; i < 20; ++i) {
    const auto d = forge.date();
    EXPECT_NE(d.find(','), std::string::npos) << d;
    // Ends in a 4-digit year.
    const auto year = d.substr(d.size() - 4);
    for (char c : year) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
  }
}

TEST(NameForgeTest, QuantityIsLargeNumeral) {
  NameForge forge = make_forge();
  for (int i = 0; i < 50; ++i) {
    const auto q = forge.quantity();
    EXPECT_GE(q.size(), 5u) << q;  // >= 10000 so it can't look like a year
    for (char c : q) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
  }
}

TEST(NameForgeTest, MoneyStartsWithDollar) {
  NameForge forge = make_forge();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(forge.money().substr(0, 2), "$ ");
  }
}

TEST(NameForgeTest, LandmarkStartsWithArticle) {
  NameForge forge = make_forge();
  EXPECT_EQ(forge.landmark().substr(0, 4), "the ");
}

TEST(NameForgeTest, OfTypeCoversAllConcreteTypes) {
  NameForge forge = make_forge();
  for (int t = 0; t < kEntityTypeCount; ++t) {
    const auto name = forge.of_type(static_cast<EntityType>(t));
    EXPECT_FALSE(name.empty());
  }
}

}  // namespace
}  // namespace qadist::corpus
