#include <gtest/gtest.h>

#include "corpus/collection.hpp"

namespace qadist::corpus {
namespace {

Collection docs(std::uint32_t n) {
  Collection c;
  for (std::uint32_t i = 0; i < n; ++i) {
    Document d;
    d.id = i;
    d.title = "t";
    d.paragraphs = {"p"};
    c.add(std::move(d));
  }
  return c;
}

TEST(SplitSkewTest, RatioOneEqualsEvenSplit) {
  const auto c = docs(100);
  const auto even = split_collection(c, 8);
  const auto skewed = split_collection_skewed(c, 8, 1.0);
  ASSERT_EQ(even.size(), skewed.size());
  for (std::size_t i = 0; i < even.size(); ++i) {
    EXPECT_EQ(even[i].first(), skewed[i].first());
    EXPECT_EQ(even[i].last(), skewed[i].last());
  }
}

TEST(SplitSkewTest, CoversEveryDocumentOnce) {
  const auto c = docs(977);
  for (double ratio : {1.0, 2.0, 3.0, 8.0}) {
    const auto subs = split_collection_skewed(c, 8, ratio);
    ASSERT_EQ(subs.size(), 8u);
    DocId expected = 0;
    for (const auto& sub : subs) {
      EXPECT_EQ(sub.first(), expected);
      expected = sub.last();
    }
    EXPECT_EQ(expected, c.size());
  }
}

TEST(SplitSkewTest, SizesGrowGeometrically) {
  const auto c = docs(10000);
  const auto subs = split_collection_skewed(c, 4, 8.0);
  ASSERT_EQ(subs.size(), 4u);
  // Monotone increasing sizes, last/first close to the requested ratio.
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_GT(subs[i].size(), subs[i - 1].size());
  }
  const double ratio = static_cast<double>(subs.back().size()) /
                       static_cast<double>(subs.front().size());
  EXPECT_NEAR(ratio, 8.0, 1.0);
}

TEST(SplitSkewTest, SingleSubCollection) {
  const auto c = docs(10);
  const auto subs = split_collection_skewed(c, 1, 5.0);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].size(), 10u);
}

TEST(SplitSkewTest, TinyCollectionDoesNotUnderflow) {
  const auto c = docs(3);
  const auto subs = split_collection_skewed(c, 8, 4.0);
  ASSERT_EQ(subs.size(), 8u);
  std::size_t total = 0;
  for (const auto& sub : subs) total += sub.size();
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace qadist::corpus
