#include "corpus/vocabulary.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qadist::corpus {
namespace {

TEST(VocabularyTest, WordsAreDistinct) {
  Vocabulary v(2000, 1.0, 5);
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    EXPECT_TRUE(seen.insert(v.word(i)).second) << v.word(i);
  }
}

TEST(VocabularyTest, DeterministicForSeed) {
  Vocabulary a(500, 1.0, 9);
  Vocabulary b(500, 1.0, 9);
  for (std::uint32_t i = 0; i < 500; ++i) EXPECT_EQ(a.word(i), b.word(i));
}

TEST(VocabularyTest, DifferentSeedsDiffer) {
  Vocabulary a(500, 1.0, 1);
  Vocabulary b(500, 1.0, 2);
  int same = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    if (a.word(i) == b.word(i)) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(VocabularyTest, FrequentWordsAreShort) {
  Vocabulary v(5000, 1.0, 3);
  double head = 0.0, tail = 0.0;
  for (std::uint32_t i = 0; i < 50; ++i)
    head += static_cast<double>(v.word(i).size());
  for (std::uint32_t i = 4000; i < 4050; ++i)
    tail += static_cast<double>(v.word(i).size());
  EXPECT_LT(head, tail);
}

TEST(VocabularyTest, SamplingFollowsZipfSkew) {
  Vocabulary v(1000, 1.1, 7);
  Rng rng(13);
  std::size_t head_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (v.sample_rank(rng) < 10) ++head_hits;
  }
  // With s=1.1 the top-10 ranks carry a large share of the mass.
  EXPECT_GT(head_hits, n / 4);
}

TEST(VocabularyTest, SampleReturnsOwnWords) {
  Vocabulary v(50, 1.0, 3);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto& w = v.sample(rng);
    bool found = false;
    for (std::uint32_t r = 0; r < v.size() && !found; ++r) {
      found = (v.word(r) == w);
    }
    EXPECT_TRUE(found) << w;
  }
}

}  // namespace
}  // namespace qadist::corpus
