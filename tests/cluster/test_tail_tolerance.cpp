// Gray faults and the tail-tolerance toolkit (cfg.gray / cfg.tail).
//
// Two families of guarantees:
//  * Pinning — with cfg.tail and cfg.gray at their defaults the system is
//    bit-identical to the pre-toolkit build: the golden constants below
//    were captured from the seed commit, and every EXPECT_DOUBLE_EQ is an
//    exact (not approximate) comparison. Any drift here means the
//    default-disabled path executes different arithmetic than before.
//  * Behavior — with the toolkit on, hedged runs drain completely, tied
//    losers cancel without zombie spans, the latency decomposition still
//    telescopes, and the failure detector stays blind to gray-slow nodes.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 16; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// Pinning: cfg.tail disabled == pre-PR behavior, bit for bit.

struct GoldenRun {
  Metrics metrics;
  std::size_t spans = 0;
  double span_start_sum = 0.0;
  double span_end_sum = 0.0;
};

GoldenRun golden_scenario(bool sharded) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 6;
  cfg.seed = 42;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_strategy = parallel::Strategy::kRecv;
  cfg.partition.ap_chunk = 8;
  if (sharded) {
    cfg.shard.num_shards = 8;
    cfg.shard.replication = 2;
  }
  System system(sim, cfg);
  obs::Tracer tracer;
  system.set_tracer(&tracer);

  OverloadWorkload workload;
  workload.count = 24;
  workload.seed = 5;
  submit_overload(system, plans(), workload);

  GoldenRun out;
  out.metrics = system.run();
  out.spans = tracer.spans().size();
  for (const auto& s : tracer.spans()) {
    out.span_start_sum += s.start;
    out.span_end_sum += s.end;
  }
  return out;
}

TEST(TailPinningTest, DisabledTailIsBitIdenticalToPreToolkitBuild) {
  const GoldenRun run = golden_scenario(/*sharded=*/false);
  const Samples& lat = run.metrics.latencies;
  EXPECT_DOUBLE_EQ(run.metrics.makespan, 775.36570072796212);
  EXPECT_EQ(lat.count(), 24u);
  EXPECT_DOUBLE_EQ(lat.mean(), 222.18277746675463);
  EXPECT_DOUBLE_EQ(lat.stddev(), 106.94527020607119);
  EXPECT_DOUBLE_EQ(lat.min(), 67.719574094712442);
  EXPECT_DOUBLE_EQ(lat.max(), 418.24967198507818);
  EXPECT_DOUBLE_EQ(lat.quantile(0.5), 222.96603597938031);
  EXPECT_DOUBLE_EQ(lat.quantile(0.95), 390.54545095696812);
  // The span digest pins the entire event schedule, not just the summary
  // stats: a single re-ordered or re-timed coroutine resumption moves it.
  EXPECT_EQ(run.spans, 511u);
  EXPECT_DOUBLE_EQ(run.span_start_sum, 95812.519198851922);
  EXPECT_DOUBLE_EQ(run.span_end_sum, 115087.59435374184);
  // And the toolkit really was off.
  EXPECT_EQ(run.metrics.hedges_issued, 0u);
  EXPECT_EQ(run.metrics.legs_cancelled, 0u);
  EXPECT_EQ(run.metrics.straggler_avoidances, 0u);
  EXPECT_EQ(run.metrics.gray_onsets, 0u);
}

TEST(TailPinningTest, DisabledTailIsBitIdenticalShardedVariant) {
  const GoldenRun run = golden_scenario(/*sharded=*/true);
  const Samples& lat = run.metrics.latencies;
  EXPECT_DOUBLE_EQ(run.metrics.makespan, 792.20730903250535);
  EXPECT_EQ(lat.count(), 24u);
  EXPECT_DOUBLE_EQ(lat.mean(), 243.20300295798816);
  EXPECT_DOUBLE_EQ(lat.stddev(), 105.59967097603098);
  EXPECT_DOUBLE_EQ(lat.min(), 86.990668840128123);
  EXPECT_DOUBLE_EQ(lat.max(), 435.09128028962141);
  EXPECT_DOUBLE_EQ(lat.quantile(0.5), 276.85229484212118);
  EXPECT_DOUBLE_EQ(lat.quantile(0.95), 386.14349700682209);
  EXPECT_EQ(run.spans, 462u);
  EXPECT_DOUBLE_EQ(run.span_start_sum, 89007.404799228389);
  EXPECT_DOUBLE_EQ(run.span_end_sum, 109686.91212788821);
}

// ---------------------------------------------------------------------------
// Behavior with the toolkit on: a 12-node cluster at moderate load with
// one 10x gray-slow node (CPU and disk; heartbeats unaffected).

struct TailRun {
  Metrics metrics;
  std::vector<obs::SpanRecord> spans;
  std::vector<obs::QuestionBreakdown> questions;
};

TailRun tail_scenario(bool hedge, bool tied, bool latency_aware,
                      bool sharded = false) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 12;
  cfg.seed = 42;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_strategy = parallel::Strategy::kRecv;
  cfg.partition.ap_chunk = 8;
  if (sharded) {
    cfg.shard.num_shards = 8;
    cfg.shard.replication = 2;
  }
  cfg.tail.hedge = hedge;
  cfg.tail.tied = tied;
  cfg.tail.latency_aware = latency_aware;
  simnet::GrayFaultEvent ev;
  ev.node = 2;
  ev.at = 50.0;
  ev.cpu_factor = 10.0;
  ev.disk_factor = 10.0;
  cfg.gray.events.push_back(ev);

  System system(sim, cfg);
  obs::Tracer tracer;
  system.set_tracer(&tracer);
  OverloadWorkload workload;
  workload.count = 48;
  workload.overload_factor = 0.6;  // moderate: tails come from the gray node
  workload.seed = 5;
  submit_overload(system, plans(), workload);

  TailRun out;
  out.metrics = system.run();
  out.spans = tracer.spans();
  out.questions = obs::analyze_questions(tracer);
  return out;
}

TEST(TailToleranceTest, HedgedRunDrainsCompletely) {
  const TailRun run = tail_scenario(true, true, true);
  const Metrics& m = run.metrics;
  // Drain invariant: everything submitted is accounted for, nothing hangs.
  EXPECT_EQ(m.submitted, 48u);
  EXPECT_EQ(m.completed + m.questions_rejected + m.questions_shed,
            m.submitted);
  EXPECT_EQ(m.latencies.count(), m.completed);
  // The machinery actually engaged.
  EXPECT_GT(m.hedges_issued, 0u);
  EXPECT_GT(m.hedge_wins, 0u);
  EXPECT_GT(m.legs_cancelled, 0u);
  EXPECT_GT(m.gray_onsets, 0u);
  // Each hedge race settles at most once: one win or loss per group, and
  // groups never outnumber the backup legs that created them.
  EXPECT_LE(m.hedge_wins + m.hedge_losses, m.hedges_issued);
  EXPECT_GE(m.hedge_wins + m.hedge_losses, 1u);
}

TEST(TailToleranceTest, CancelledLegsAreNeverZombieSpans) {
  const TailRun run = tail_scenario(true, true, true);
  std::size_t losers = 0;
  for (const obs::SpanRecord& s : run.spans) {
    // Every span the run produced is closed — an abandoned leg whose span
    // stayed open would be a zombie the coordinator forgot.
    EXPECT_TRUE(s.closed) << "open span: " << s.name;
    if (obs::attr_int(s.attrs, "hedge_loser").value_or(0) != 0) {
      ++losers;
      // In tied mode every loser was cancelled, and its interval ends at
      // resolution — never after the run.
      EXPECT_EQ(obs::attr_int(s.attrs, "cancelled").value_or(0), 1);
      EXPECT_LE(s.end, run.metrics.makespan + 1e-9);
    }
  }
  EXPECT_GT(losers, 0u);
}

TEST(TailToleranceTest, CriticalPathTelescopesOnHedgedRuns) {
  for (const bool sharded : {false, true}) {
    const TailRun run = tail_scenario(true, true, true, sharded);
    ASSERT_FALSE(run.questions.empty());
    for (const obs::QuestionBreakdown& q : run.questions) {
      EXPECT_NEAR(q.component_sum(), q.total,
                  1e-6 * std::max(1.0, q.total))
          << "question " << q.question << " sharded=" << sharded;
      EXPECT_GE(q.hedge_wasted, 0.0);
    }
    const obs::RunAttribution attribution = obs::attribute_run(run.questions);
    // Some loser work must surface as waste when hedges resolved.
    if (run.metrics.hedge_losses + run.metrics.hedge_wins > 0) {
      EXPECT_GT(attribution.hedge_wasted, 0.0);
    }
  }
}

TEST(TailToleranceTest, HedgingImprovesTailUnderGraySlowNode) {
  const TailRun none = tail_scenario(false, false, false);
  const TailRun full = tail_scenario(true, true, true);
  // The whole point: with one 10x-slow node, hedging + tied + selection
  // pulls the tail in by a wide margin.
  EXPECT_LT(full.metrics.latencies.quantile(0.95),
            0.5 * none.metrics.latencies.quantile(0.95));
  EXPECT_EQ(full.metrics.completed, none.metrics.completed);
}

TEST(GrayFaultTest, DetectorStaysBlindToLosslessGraySlowNode) {
  // A gray-slow node keeps its heartbeats and loses no messages: the
  // failure detector must never flap it off alive — that blindness is
  // what motivates the latency-signal toolkit.
  const TailRun run = tail_scenario(false, false, false);
  EXPECT_EQ(run.metrics.detector_suspicions, 0u);
  EXPECT_EQ(run.metrics.detector_deaths, 0u);
  EXPECT_EQ(run.metrics.completed, run.metrics.submitted);
  EXPECT_EQ(run.metrics.gray_onsets, 1u);
  EXPECT_EQ(run.metrics.gray_recoveries, 0u);  // no recover_after scripted
}

TEST(GrayFaultTest, RecoveryWindowClosesAndCounts) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.seed = 7;
  cfg.partition.ap_chunk = 8;
  simnet::GrayFaultEvent ev;
  ev.node = 1;
  ev.at = 10.0;
  ev.recover_after = 120.0;
  ev.disk_factor = 10.0;
  cfg.gray.events.push_back(ev);
  System system(sim, cfg);
  OverloadWorkload workload;
  workload.count = 12;
  workload.seed = 3;
  submit_overload(system, plans(), workload);
  const Metrics m = system.run();
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.gray_onsets, 1u);
  EXPECT_EQ(m.gray_recoveries, 1u);
}

}  // namespace
}  // namespace qadist::cluster
