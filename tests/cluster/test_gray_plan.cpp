// GrayFaultPlan edge cases: overlapping windows have well-defined
// semantics (per-resource max across open windows, recovery when the last
// window closes), zero-length windows count but never degrade, and
// malformed plans (zero/negative/non-finite factors, negative onset, NaN
// recovery, unknown nodes) are rejected loudly at construction.

#include <cmath>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "simnet/simulation.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 6; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

// The system's run loop only terminates once every submitted question is
// accounted for, so each behavior test carries a small workload; the
// factor probes are scheduled directly on the simulation and fire at
// their instants regardless of when the questions finish.
void submit_small_workload(System& system) {
  OverloadWorkload workload;
  workload.count = 4;
  submit_overload(system, plans(), workload);
}

SystemConfig base_config() {
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.seed = 3;
  return cfg;
}

simnet::GrayFaultEvent gray(std::uint32_t node, double at,
                            double recover_after, double cpu, double disk,
                            double extra = 0.0) {
  simnet::GrayFaultEvent event;
  event.node = node;
  event.at = at;
  event.recover_after = recover_after;
  event.cpu_factor = cpu;
  event.disk_factor = disk;
  event.extra_latency = extra;
  return event;
}

TEST(GrayPlanTest, OverlappingWindowsTakePerResourceMax) {
  SystemConfig cfg = base_config();
  // Window A [10, 30): cpu 4x, disk 2x. Window B [20, 40): cpu 3x, disk 5x.
  cfg.gray.events.push_back(gray(0, 10.0, 20.0, 4.0, 2.0));
  cfg.gray.events.push_back(gray(0, 20.0, 20.0, 3.0, 5.0));

  simnet::Simulation sim;
  System system(sim, cfg);
  submit_small_workload(system);
  std::vector<std::pair<double, double>> observed;
  for (const double t : {15.0, 25.0, 35.0, 45.0}) {
    sim.schedule_at(t, [&system, &observed] {
      observed.emplace_back(system.node(0).gray_cpu_factor(),
                            system.node(0).gray_disk_factor());
    });
  }
  const Metrics m = system.run();

  ASSERT_EQ(observed.size(), 4u);
  EXPECT_DOUBLE_EQ(observed[0].first, 4.0);   // A only
  EXPECT_DOUBLE_EQ(observed[0].second, 2.0);
  EXPECT_DOUBLE_EQ(observed[1].first, 4.0);   // A and B: max per resource
  EXPECT_DOUBLE_EQ(observed[1].second, 5.0);
  EXPECT_DOUBLE_EQ(observed[2].first, 3.0);   // A closed, B still open
  EXPECT_DOUBLE_EQ(observed[2].second, 5.0);
  EXPECT_DOUBLE_EQ(observed[3].first, 1.0);   // all windows closed
  EXPECT_DOUBLE_EQ(observed[3].second, 1.0);
  EXPECT_EQ(m.gray_onsets, 2u);
  EXPECT_EQ(m.gray_recoveries, 2u);
}

TEST(GrayPlanTest, ZeroLengthWindowCountsButNeverDegrades) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, 0.0, 8.0, 8.0));

  simnet::Simulation sim;
  System system(sim, cfg);
  submit_small_workload(system);
  std::vector<double> observed;
  sim.schedule_at(10.5, [&system, &observed] {
    observed.push_back(system.node(0).gray_cpu_factor());
  });
  const Metrics m = system.run();

  ASSERT_EQ(observed.size(), 1u);
  EXPECT_DOUBLE_EQ(observed[0], 1.0);  // onset + recovery at the same instant
  EXPECT_EQ(m.gray_onsets, 1u);
  EXPECT_EQ(m.gray_recoveries, 1u);
}

TEST(GrayPlanTest, PermanentWindowNeverRecovers) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, -1.0, 6.0, 3.0));

  simnet::Simulation sim;
  System system(sim, cfg);
  submit_small_workload(system);
  std::vector<double> observed;
  sim.schedule_at(1000.0, [&system, &observed] {
    observed.push_back(system.node(0).gray_cpu_factor());
  });
  const Metrics m = system.run();

  ASSERT_EQ(observed.size(), 1u);
  EXPECT_DOUBLE_EQ(observed[0], 6.0);
  EXPECT_EQ(m.gray_onsets, 1u);
  EXPECT_EQ(m.gray_recoveries, 0u);
}

TEST(GrayPlanDeathTest, RejectsZeroCpuFactor) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, 20.0, 0.0, 2.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "gray factors must be positive");
}

TEST(GrayPlanDeathTest, RejectsNegativeDiskFactor) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, 20.0, 2.0, -3.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "gray factors must be positive");
}

TEST(GrayPlanDeathTest, RejectsNonFiniteFactor) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, 20.0, kNaN, 2.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "gray factors must be positive");
}

TEST(GrayPlanDeathTest, RejectsNegativeOnsetTime) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, -5.0, 20.0, 2.0, 2.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "onset time must be finite");
}

TEST(GrayPlanDeathTest, RejectsNaNRecovery) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, kNaN, 2.0, 2.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "recover_after must not be NaN");
}

TEST(GrayPlanDeathTest, RejectsNegativeExtraLatency) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(0, 10.0, 20.0, 2.0, 2.0, -0.5));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "extra_latency must be finite");
}

TEST(GrayPlanDeathTest, RejectsUnknownNode) {
  SystemConfig cfg = base_config();
  cfg.gray.events.push_back(gray(7, 10.0, 20.0, 2.0, 2.0));
  EXPECT_DEATH(
      {
        simnet::Simulation sim;
        System system(sim, cfg);
      },
      "unknown node");
}

}  // namespace
}  // namespace qadist::cluster
