#include "cluster/trace.hpp"

#include <gtest/gtest.h>

#include "cluster/plan.hpp"

namespace qadist::cluster {
namespace {

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  trace.record(1.5, 0, "started");
  trace.record(2.25, 3, "finished collection 2");
  ASSERT_EQ(trace.entries().size(), 2u);
  EXPECT_EQ(trace.entries()[0].time, 1.5);
  EXPECT_EQ(trace.entries()[1].node, 3u);
}

TEST(TraceRecorderTest, RenderUsesOneBasedNodeNames) {
  TraceRecorder trace;
  trace.record(0.0, 0, "hello");
  trace.record(12.34, 3, "done");
  const auto text = trace.render();
  EXPECT_NE(text.find("[0.00s] N1 hello"), std::string::npos);
  EXPECT_NE(text.find("[12.34s] N4 done"), std::string::npos);
}

TEST(TraceRecorderTest, RenderStableSortsByTime) {
  // Events from concurrent legs are recorded in completion order, not
  // time order; render() must sort by timestamp but keep the recording
  // order of simultaneous events (stable).
  TraceRecorder trace;
  trace.record(5.0, 1, "late");
  trace.record(1.0, 0, "early");
  trace.record(5.0, 2, "late tie");
  const auto text = trace.render();
  const auto early = text.find("early");
  const auto late = text.find("late");
  const auto tie = text.find("late tie");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  ASSERT_NE(tie, std::string::npos);
  EXPECT_LT(early, late);
  EXPECT_LT(late, tie);  // stable: first-recorded tie renders first
  // Raw entries stay in recording order.
  EXPECT_EQ(trace.entries()[0].node, 1u);
}

TEST(TraceRecorderTest, ClearEmpties) {
  TraceRecorder trace;
  trace.record(0.0, 0, "x");
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.render(), "");
}

// ------------------------------------------------------------ scale_plan

TEST(ScalePlanTest, ScalesDemandsAndBytes) {
  QuestionPlan plan;
  plan.qp = Demand{2.0, 0.0};
  plan.po = Demand{0.5, 0.0};
  plan.answer_sort = Demand{0.1, 0.0};
  QuestionPlan::PrUnit pr;
  pr.demand = Demand{1.0, 1000.0};
  pr.ps = Demand{0.2, 0.0};
  pr.bytes_out = 800;
  plan.pr_units.push_back(pr);
  QuestionPlan::ApUnit ap;
  ap.demand = Demand{3.0, 0.0};
  ap.bytes_in = 600;
  ap.answer_bytes_out = 100;
  plan.ap_units.push_back(ap);

  const double before_cpu = plan.total_cpu_seconds();
  scale_plan(plan, 0.5);
  EXPECT_DOUBLE_EQ(plan.total_cpu_seconds(), before_cpu * 0.5);
  EXPECT_DOUBLE_EQ(plan.pr_units[0].demand.disk_bytes, 500.0);
  EXPECT_EQ(plan.pr_units[0].bytes_out, 400u);
  EXPECT_EQ(plan.ap_units[0].bytes_in, 300u);
  EXPECT_EQ(plan.ap_units[0].answer_bytes_out, 50u);
}

TEST(ScalePlanTest, UnitScaleIsIdentity) {
  QuestionPlan plan;
  QuestionPlan::ApUnit ap;
  ap.demand = Demand{3.0, 7.0};
  ap.bytes_in = 600;
  plan.ap_units.push_back(ap);
  scale_plan(plan, 1.0);
  EXPECT_DOUBLE_EQ(plan.ap_units[0].demand.cpu_seconds, 3.0);
  EXPECT_EQ(plan.ap_units[0].bytes_in, 600u);
}

TEST(ScalePlanTest, StructureUnchanged) {
  QuestionPlan plan;
  plan.ap_units.resize(7);
  plan.pr_units.resize(3);
  qa::Answer a;
  a.candidate = "X";
  plan.answers.push_back(a);
  scale_plan(plan, 0.3);
  EXPECT_EQ(plan.ap_units.size(), 7u);
  EXPECT_EQ(plan.pr_units.size(), 3u);
  EXPECT_EQ(plan.answers.size(), 1u);
  EXPECT_EQ(plan.answers[0].candidate, "X");
}

}  // namespace
}  // namespace qadist::cluster
