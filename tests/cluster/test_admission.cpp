#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "support/test_world.hpp"
#include "workload/arrival.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;
using qadist::workload::Arrival;
using qadist::workload::ArrivalProcessConfig;
using qadist::workload::ArrivalShape;

std::vector<QuestionPlan> small_plans() {
  const auto& world = test_world();
  const auto cost = CostModel::calibrate(
      *world.engine,
      std::span<const corpus::Question>(world.questions).subspan(0, 8));
  std::vector<QuestionPlan> out;
  for (std::size_t i = 0; i < 10; ++i) {
    out.push_back(make_plan(*world.engine, cost, world.questions[i]));
  }
  return out;
}

/// An open-loop Poisson stream far past what two nodes can drain.
ArrivalProcessConfig overload_stream(const std::vector<QuestionPlan>& plans,
                                     std::size_t count, std::size_t nodes) {
  ArrivalProcessConfig c;
  c.shape = ArrivalShape::kPoisson;
  const double service =
      mean_service_seconds(plans, Bandwidth::from_mbps(250));
  c.rate_qps = 4.0 * static_cast<double>(nodes) / service;  // 4x capacity
  c.count = count;
  c.seed = 7;
  return c;
}

Metrics run_with(const std::vector<QuestionPlan>& plans,
                 const AdmissionConfig& admission, std::size_t count = 48) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.partition.ap_chunk = 8;
  cfg.admission = admission;
  System system(sim, cfg);
  const auto stream = qadist::workload::arrival_stream(
      overload_stream(plans, count, cfg.nodes), plans.size());
  qadist::workload::submit_stream(system, plans, stream);
  return system.run();
}

TEST(AdmissionTest, DisabledAdmissionLeavesCountersAtZero) {
  const auto plans = small_plans();
  const auto m = run_with(plans, AdmissionConfig{}, 24);
  EXPECT_EQ(m.completed, 24u);
  EXPECT_EQ(m.questions_rejected, 0u);
  EXPECT_EQ(m.questions_shed, 0u);
  EXPECT_EQ(m.admission_degraded, 0u);
  EXPECT_EQ(m.admission_queue_peak, 0.0);
  EXPECT_EQ(m.admission_wait.count(), 0u);
}

TEST(AdmissionTest, RejectPolicyAccountsForEveryArrival) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 4;
  admission.queue_capacity = 2;
  admission.policy = AdmissionPolicy::kReject;
  const auto m = run_with(plans, admission);
  EXPECT_EQ(m.submitted, 48u);
  EXPECT_GT(m.questions_rejected, 0u);
  EXPECT_EQ(m.completed + m.questions_rejected, 48u);
  EXPECT_LE(m.admission_queue_peak, 2.0);
  // Every admitted question recorded its (possibly zero) queue wait.
  EXPECT_EQ(m.admission_wait.count(), m.completed);
  EXPECT_GT(m.admission_wait.max(), 0.0);  // someone actually queued
}

TEST(AdmissionTest, ShedOldestDropsQueuedQuestionsNotArrivals) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 4;
  admission.queue_capacity = 2;
  admission.policy = AdmissionPolicy::kShedOldest;
  const auto m = run_with(plans, admission);
  EXPECT_GT(m.questions_shed, 0u);
  EXPECT_EQ(m.questions_rejected, 0u);  // the waiting room absorbs arrivals
  EXPECT_EQ(m.completed + m.questions_shed, 48u);
}

TEST(AdmissionTest, ShedOldestWithoutQueueDegeneratesToReject) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 2;
  admission.queue_capacity = 0;
  admission.policy = AdmissionPolicy::kShedOldest;
  const auto m = run_with(plans, admission, 24);
  EXPECT_EQ(m.questions_shed, 0u);  // nothing queued, nothing to shed
  EXPECT_GT(m.questions_rejected, 0u);
  EXPECT_EQ(m.completed + m.questions_rejected, 24u);
}

TEST(AdmissionTest, DegradePolicyAnswersEveryArrival) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 4;
  admission.queue_capacity = 2;
  admission.policy = AdmissionPolicy::kDegrade;
  const auto m = run_with(plans, admission);
  EXPECT_EQ(m.completed, 48u);  // degraded answers still answer
  EXPECT_EQ(m.questions_rejected, 0u);
  EXPECT_EQ(m.questions_shed, 0u);
  EXPECT_GT(m.admission_degraded, 0u);
  EXPECT_GE(m.questions_degraded, m.admission_degraded);  // no cache: partial
}

TEST(AdmissionTest, QueueWaitCountsIntoResponseTime) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 2;
  admission.queue_capacity = 8;
  const auto m = run_with(plans, admission, 24);
  // A queued question's latency includes its wait, so the slowest answer
  // must be at least as slow as the longest recorded wait.
  EXPECT_GT(m.admission_wait.max(), 0.0);
  EXPECT_GE(m.latencies.max(), m.admission_wait.max());
}

TEST(AdmissionTest, LoadThresholdShedsOnPoolPressure) {
  const auto plans = small_plans();
  AdmissionConfig admission;
  admission.max_concurrent = 1000;  // concurrency never binds
  admission.queue_capacity = 4;
  admission.policy = AdmissionPolicy::kReject;
  admission.load_threshold = 0.05;  // trips as soon as the pool works
  const auto m = run_with(plans, admission);
  EXPECT_GT(m.questions_rejected, 0u);
  EXPECT_EQ(m.completed + m.questions_rejected, 48u);
}

TEST(AdmissionTest, AdmissionKeepsAdmittedLatencyBounded) {
  // The acceptance property at test scale: under a sustained overload
  // stream, an admission-controlled system answers its admitted questions
  // in bounded time while the unbounded system's latency grows with the
  // backlog.
  const auto plans = small_plans();
  AdmissionConfig bounded;
  bounded.max_concurrent = 4;
  bounded.queue_capacity = 4;
  const auto controlled = run_with(plans, bounded, 64);
  const auto unbounded = run_with(plans, AdmissionConfig{}, 64);
  EXPECT_LT(controlled.latencies.quantile(0.95),
            unbounded.latencies.quantile(0.95));
}

}  // namespace
}  // namespace qadist::cluster
