// The power-of-two-choices extension policy and the per-node work metrics.

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& tc_plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 24; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    apply_bimodal_mix(out);
    return out;
  }();
  return p;
}

Metrics run_policy(Policy policy, std::uint64_t seed = 3) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.dispatch.policy = policy;
  cfg.partition.ap_chunk = 8;
  cfg.seed = seed;
  System system(sim, cfg);
  OverloadWorkload workload;
  workload.seed = seed;
  submit_overload(system, tc_plans(), workload);
  return system.run();
}

TEST(TwoChoiceTest, CompletesAndMigrates) {
  const auto m = run_policy(Policy::kTwoChoice);
  EXPECT_EQ(m.completed, 32u);
  // Roughly half the samples should land off the DNS node.
  EXPECT_GT(m.migrations_qa, 0u);
  EXPECT_EQ(m.migrations_pr, 0u);  // no embedded dispatchers
  EXPECT_EQ(m.migrations_ap, 0u);
}

TEST(TwoChoiceTest, DeterministicForFixedSeed) {
  const auto a = run_policy(Policy::kTwoChoice, 9);
  const auto b = run_policy(Policy::kTwoChoice, 9);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
  EXPECT_EQ(a.migrations_qa, b.migrations_qa);
}

TEST(TwoChoiceTest, DifferentSeedsDiffer) {
  const auto a = run_policy(Policy::kTwoChoice, 1);
  const auto b = run_policy(Policy::kTwoChoice, 2);
  EXPECT_NE(a.migrations_qa, b.migrations_qa);
}

TEST(TwoChoiceTest, Name) {
  EXPECT_EQ(to_string(Policy::kTwoChoice), "TWO-CHOICE");
}

TEST(NodeWorkMetricsTest, PerNodeWorkRecorded) {
  const auto m = run_policy(Policy::kDqa);
  ASSERT_EQ(m.node_cpu_work.size(), 4u);
  ASSERT_EQ(m.node_disk_bytes.size(), 4u);
  double total_cpu = 0.0;
  for (double w : m.node_cpu_work) {
    EXPECT_GT(w, 0.0);
    total_cpu += w;
  }
  // Total served CPU matches the workload's demand (plus per-batch answer
  // extraction overheads), so it must be at least the plan total.
  double plan_cpu = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    plan_cpu += tc_plans()[(i * 7 + 3 * 13) % tc_plans().size()]
                    .total_cpu_seconds();
  }
  EXPECT_GE(total_cpu, plan_cpu * 0.99);
}

TEST(NodeWorkMetricsTest, ImbalanceIsAtLeastOne) {
  for (Policy policy : {Policy::kDns, Policy::kInter, Policy::kDqa,
                        Policy::kTwoChoice}) {
    const auto m = run_policy(policy);
    EXPECT_GE(m.cpu_work_imbalance(), 1.0);
    EXPECT_LT(m.cpu_work_imbalance(), 4.0);  // nothing pathological
  }
}

TEST(NodeWorkMetricsTest, DqaBalancesBetterThanDns) {
  const auto dns = run_policy(Policy::kDns);
  const auto dqa = run_policy(Policy::kDqa);
  EXPECT_LT(dqa.cpu_work_imbalance(), dns.cpu_work_imbalance());
}

TEST(NodeWorkMetricsTest, EmptyMetricsImbalanceIsOne) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.cpu_work_imbalance(), 1.0);
}

}  // namespace
}  // namespace qadist::cluster
