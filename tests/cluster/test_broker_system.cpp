// Selective search + broker tier at cluster level: every knob at its
// default (or an explicit no-op: top-k = shard count, 0 brokers) stays
// bit-identical to the flat exhaustive path; selection prunes work
// without marking answers degraded (pruned answers stay cacheable);
// a broker tier drains a batch through broker legs; a crashed designated
// broker re-routes through a surviving group member; and a broker
// subtree with nobody left degrades the answer — which flows through
// degraded_answer_fraction and must never enter the answer cache (the
// PR 4 rule, extended to broker-produced partial answers).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broker/stats.hpp"
#include "cluster/system.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 8; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig brokered_config(std::size_t nodes, std::size_t num_shards,
                             std::size_t replication, std::size_t brokers) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.partition.ap_chunk = 8;
  cfg.shard.num_shards = num_shards;
  cfg.shard.replication = replication;
  cfg.broker.brokers = brokers;
  return cfg;
}

Metrics run_batch(const SystemConfig& cfg, std::size_t count, Seconds spacing,
                  const obs::MetricsRegistry** registry_out = nullptr) {
  static std::vector<std::unique_ptr<simnet::Simulation>> sims;
  static std::vector<std::unique_ptr<System>> systems;
  sims.push_back(std::make_unique<simnet::Simulation>());
  systems.push_back(std::make_unique<System>(*sims.back(), cfg));
  System& system = *systems.back();
  Seconds at = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    system.submit(plans()[i % plans().size()], at);
    at += spacing;
  }
  const auto metrics = system.run();
  if (registry_out != nullptr) *registry_out = &system.registry();
  return metrics;
}

double counter_value(const obs::MetricsRegistry& registry,
                     std::string_view name) {
  const auto* c = registry.find_counter(name);
  return c != nullptr ? c->value() : 0.0;
}

// --- No-op knobs are bit-identical to the flat exhaustive path --------

TEST(BrokerSystemTest, NoOpSelectionIsBitIdenticalToExhaustiveSearch) {
  SystemConfig plain = brokered_config(4, 8, 2, 0);
  SystemConfig noop = brokered_config(4, 8, 2, 0);
  noop.broker.top_k = 8;           // k = num_shards: exhaustive by contract
  noop.broker.selectivity = 1.0;   // and the fraction axis at its no-op
  const obs::MetricsRegistry* reg = nullptr;
  const auto a = run_batch(plain, 6, 20.0);
  const auto b = run_batch(noop, 6, 20.0, &reg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.migrations_pr, b.migrations_pr);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  // Nothing was ever pruned or routed through a broker.
  ASSERT_NE(reg, nullptr);
  EXPECT_DOUBLE_EQ(counter_value(*reg, "selection_questions_pruned"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(*reg, "broker_legs"), 0.0);
}

// --- Selective search -------------------------------------------------

TEST(BrokerSystemTest, SelectionPrunesWorkWithoutDegradingAnswers) {
  SystemConfig cfg = brokered_config(4, 8, 2, 0);
  cfg.broker.selectivity = 0.5;  // top 4 of 8 shards per question
  const obs::MetricsRegistry* reg = nullptr;
  const auto metrics = run_batch(cfg, 6, 20.0, &reg);
  EXPECT_EQ(metrics.completed, 6u);
  // Pruning is a routing decision, not a failure: no degradation.
  EXPECT_EQ(metrics.questions_degraded, 0u);
  EXPECT_EQ(metrics.shard_units_unserved, 0u);
  ASSERT_NE(reg, nullptr);
  EXPECT_GT(counter_value(*reg, "selection_questions_pruned"), 0.0);
  EXPECT_GT(counter_value(*reg, "selection_units_pruned"), 0.0);
  const auto* gauge = reg->find_gauge("degraded_answer_fraction");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST(BrokerSystemTest, SelectionPrunedAnswersAreCacheable) {
  // A pruned answer is an approximate answer the operator asked for —
  // unlike a degraded one it may enter the answer cache.
  SystemConfig cfg = brokered_config(4, 8, 2, 0);
  cfg.broker.selectivity = 0.5;
  cfg.cache.answers.max_entries = 64;
  simnet::Simulation sim;
  System system(sim, cfg);
  system.submit(plans()[0], 0.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.questions_degraded, 0u);
  bool cached = false;
  for (sched::NodeId n = 0; n < 4; ++n) {
    cached = cached || system.answer_cached(n, plans()[0]);
  }
  EXPECT_TRUE(cached);
}

TEST(BrokerSystemTest, CoriStatsDriveSelectionAtSystemLevel) {
  // Wire in a real CollectionStats (no term evidence: every belief is the
  // default, so CORI keeps the lowest shard ids). The system must score
  // through it rather than the work proxy and still drain cleanly.
  SystemConfig cfg = brokered_config(4, 8, 2, 0);
  cfg.broker.top_k = 3;
  std::vector<ir::ShardTermStats> shards(8);
  for (auto& s : shards) {
    s.words = 1000;
    s.paragraphs = 100;
  }
  cfg.broker.stats = std::make_shared<broker::CollectionStats>(
      broker::CollectionStats::from_shard_stats(std::move(shards)));
  const obs::MetricsRegistry* reg = nullptr;
  const auto metrics = run_batch(cfg, 4, 25.0, &reg);
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_EQ(metrics.questions_degraded, 0u);
  ASSERT_NE(reg, nullptr);
  EXPECT_GT(counter_value(*reg, "selection_questions_pruned"), 0.0);
}

// --- Broker/mediator tier ---------------------------------------------

TEST(BrokerSystemTest, BrokeredBatchDrainsThroughBrokerLegs) {
  SystemConfig cfg = brokered_config(6, 8, 2, 2);
  const obs::MetricsRegistry* reg = nullptr;
  const auto metrics = run_batch(cfg, 6, 20.0, &reg);
  EXPECT_EQ(metrics.completed, 6u);
  EXPECT_EQ(metrics.questions_degraded, 0u);
  EXPECT_EQ(metrics.shard_units_unserved, 0u);
  ASSERT_NE(reg, nullptr);
  EXPECT_GT(counter_value(*reg, "broker_legs"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(*reg, "broker_reroutes"), 0.0);
}

TEST(BrokerSystemTest, CrashedDesignatedBrokerReroutesThroughItsGroup) {
  simnet::Simulation sim;
  SystemConfig cfg = brokered_config(6, 8, 2, 2);
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  // Groups are {0,1,2} and {3,4,5}; node 3 fronts group 1. Kill it before
  // any question arrives: every group-1 slice must route through a
  // surviving group member instead.
  system.schedule_crash(3, 1.0);
  ASSERT_GE(plans()[0].pr_units.size(), 2u);  // odd units live in group 1
  Seconds at = 10.0;
  for (std::size_t i = 0; i < 4; ++i) {
    system.submit(plans()[i], at);
    at += 20.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_EQ(metrics.crashes, 1u);
  // R=2 inside a 3-node group always leaves a live holder, so the
  // re-routed slices are served in full.
  EXPECT_EQ(metrics.questions_degraded, 0u);
  const auto* reroutes = system.registry().find_counter("broker_reroutes");
  ASSERT_NE(reroutes, nullptr);
  EXPECT_GE(reroutes->value(), 4.0);  // one per group-1 slice, at least
}

// --- Degraded broker answers: accounting + the cache rule -------------

TEST(BrokerSystemTest, DeadBrokerSubtreeDegradesAndNeverEntersTheCache) {
  simnet::Simulation sim;
  // Groups {0,1} and {2,3}, R=1: killing nodes 2 and 3 leaves group 1
  // with no broker and no replica — its slice can only be dropped.
  SystemConfig cfg = brokered_config(4, 8, 1, 2);
  cfg.cache.answers.max_entries = 64;
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  system.schedule_crash(2, 1.0);
  system.schedule_crash(3, 1.0);
  ASSERT_GE(plans()[0].pr_units.size(), 2u);
  system.submit(plans()[0], 10.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.questions_degraded, 1u);
  EXPECT_GE(metrics.shard_units_unserved, 1u);
  EXPECT_GE(trace.count_containing("no usable broker"), 1u);
  // The partial answer flows through the degraded accounting...
  const auto* gauge =
      system.registry().find_gauge("degraded_answer_fraction");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);
  // ...and was never admitted to any node's answer cache.
  for (sched::NodeId n = 0; n < 4; ++n) {
    EXPECT_FALSE(system.answer_cached(n, plans()[0]));
  }
}

TEST(BrokerSystemTest, BrokeredRunsAreDeterministic) {
  const auto run_once = [] {
    simnet::Simulation sim;
    SystemConfig cfg = brokered_config(6, 8, 2, 2);
    cfg.broker.selectivity = 0.5;
    cfg.faults.crashes.push_back(FaultEvent{3, 5.0, /*restart_after=*/60.0});
    System system(sim, cfg);
    Seconds at = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      system.submit(plans()[i], at);
      at += 15.0;
    }
    return system.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_EQ(a.shard_units_unserved, b.shard_units_unserved);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace qadist::cluster
