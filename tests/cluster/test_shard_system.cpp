// Sharded corpus subsystem at cluster level: full replication stays
// bit-identical to the unsharded system, partial replication constrains PR
// placement to replica holders and cuts per-node storage, a holder crash
// fails over and re-replicates in the background, an unavailable shard
// degrades rather than blocks, and a rejoined holder re-validates its
// copies. Also the rejoin cache-clear regression (a leave/rejoin must cold
// the node's caches exactly like a crash does).

#include <gtest/gtest.h>

#include <vector>

#include "cluster/system.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 8; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig sharded_config(std::size_t nodes, std::size_t num_shards,
                            std::size_t replication) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.partition.ap_chunk = 8;
  cfg.shard.num_shards = num_shards;
  cfg.shard.replication = replication;
  return cfg;
}

Metrics run_batch(const SystemConfig& cfg, std::size_t count,
                  Seconds spacing, Seconds start = 0.0) {
  simnet::Simulation sim;
  System system(sim, cfg);
  Seconds at = start;
  for (std::size_t i = 0; i < count; ++i) {
    system.submit(plans()[i % plans().size()], at);
    at += spacing;
  }
  return system.run();
}

TEST(ShardSystemTest, FullReplicationMatchesUnshardedBitForBit) {
  SystemConfig plain = sharded_config(4, 0, 0);  // sharding off
  SystemConfig full = sharded_config(4, 6, 0);   // R = nodes (default)
  const auto a = run_batch(plain, 4, 30.0);
  const auto b = run_batch(full, 4, 30.0);
  // Same event sequence: the map exists but placement is unconstrained,
  // so only the storage accounting differs.
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
  EXPECT_EQ(a.migrations_pr, b.migrations_pr);
  EXPECT_EQ(a.migrations_qa, b.migrations_qa);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_TRUE(a.node_storage_bytes.empty());
  ASSERT_EQ(b.node_storage_bytes.size(), 4u);
  for (double bytes : b.node_storage_bytes) {
    EXPECT_DOUBLE_EQ(bytes, 6.0 * static_cast<double>(full.shard.shard_bytes));
  }
}

TEST(ShardSystemTest, PartialReplicationCutsPerNodeStorageAndStillDrains) {
  const auto full = run_batch(sharded_config(4, 8, 0), 6, 20.0);
  const auto partial = run_batch(sharded_config(4, 8, 2), 6, 20.0);
  EXPECT_EQ(partial.completed, 6u);
  EXPECT_EQ(partial.questions_degraded, 0u);  // every shard has live holders
  EXPECT_EQ(partial.shard_units_unserved, 0u);
  // R=2 of 4: half the replicas, so the worst node stores well under the
  // everything-everywhere footprint.
  EXPECT_GT(partial.max_storage_bytes(), 0.0);
  EXPECT_LT(partial.max_storage_bytes(), full.max_storage_bytes());
  double total = 0.0;
  for (double bytes : partial.node_storage_bytes) total += bytes;
  EXPECT_DOUBLE_EQ(
      total, 8.0 * 2.0 * static_cast<double>(sharded_config(4, 8, 2).shard.shard_bytes));
}

TEST(ShardSystemTest, CrashedHolderFailsOverAndRebuildsInBackground) {
  simnet::Simulation sim;
  SystemConfig cfg = sharded_config(4, 8, 2);
  System system(sim, cfg);
  const shard::ShardMap* map = system.shard_map();
  ASSERT_NE(map, nullptr);
  // Crash a node known to hold replicas (every ready source is a holder).
  const sched::NodeId victim =
      static_cast<sched::NodeId>(*map->ready_source(0));
  const std::size_t lost = map->shards_of(victim).size();
  ASSERT_GT(lost, 0u);
  system.schedule_crash(victim, 5.0);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    system.submit(plans()[i], at);
    at += 20.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 6u);
  EXPECT_EQ(metrics.crashes, 1u);
  // One failover per lost shard (R=2 on 4 nodes always leaves both a
  // surviving source and a spare target), and with no further faults every
  // rebuild runs to completion before the simulation drains.
  EXPECT_EQ(metrics.shard_failovers, lost);
  EXPECT_EQ(metrics.shard_rebuilds, lost);
  EXPECT_EQ(metrics.shard_rebuild_bytes,
            lost * static_cast<std::size_t>(cfg.shard.shard_bytes));
  EXPECT_EQ(metrics.shard_rebuild_seconds.count(), lost);
  // Every copy pays at least the rebuild-bandwidth pacing floor.
  const double floor =
      cfg.shard.rebuild_bandwidth.transfer_time(
          static_cast<double>(cfg.shard.shard_bytes));
  EXPECT_GE(metrics.shard_rebuild_seconds.min(), floor);
  // The map healed: replication is restored on the survivors.
  EXPECT_EQ(map->replica_count(victim), 0u);
  for (shard::ShardId s = 0; s < 8; ++s) {
    EXPECT_EQ(map->ready_holders(s).size(), 2u);
  }
}

TEST(ShardSystemTest, UnavailableShardDegradesInsteadOfBlocking) {
  simnet::Simulation sim;
  SystemConfig cfg = sharded_config(2, 4, 1);  // R=1: no failover source
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  const shard::ShardMap* map = system.shard_map();
  ASSERT_NE(map, nullptr);
  const sched::NodeId victim =
      static_cast<sched::NodeId>(*map->ready_source(0));
  system.schedule_crash(victim, 1.0);
  ASSERT_GE(plans()[0].pr_units.size(), 1u);  // unit 0 lives on shard 0
  system.submit(plans()[0], 10.0);
  const auto metrics = system.run();
  // The question completes — degraded by the dead holder's corpus slice —
  // and nothing was rebuilt (no surviving replica to copy from).
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.questions_degraded, 1u);
  EXPECT_GE(metrics.shard_units_unserved, 1u);
  EXPECT_EQ(metrics.shard_rebuilds, 0u);
  EXPECT_GE(trace.count_containing("no ready replica"), 1u);
  EXPECT_GE(trace.count_containing("unavailable"), 1u);
}

TEST(ShardSystemTest, RestartedHolderRevalidatesItsShards) {
  simnet::Simulation sim;
  SystemConfig cfg = sharded_config(4, 8, 2);
  System system(sim, cfg);
  const shard::ShardMap* map = system.shard_map();
  ASSERT_NE(map, nullptr);
  const sched::NodeId victim =
      static_cast<sched::NodeId>(*map->ready_source(0));
  const auto lost = map->shards_of(victim);
  system.schedule_crash(victim, 5.0, /*restart_after=*/120.0);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    system.submit(plans()[i], at);
    at += 60.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 4u);
  // The rejoined node re-scanned every stashed copy before serving again.
  EXPECT_EQ(metrics.shard_revalidations, lost.size());
  for (shard::ShardId s : lost) {
    EXPECT_TRUE(map->ready(static_cast<shard::NodeId>(victim), s));
  }
}

TEST(ShardSystemTest, ShardedRunsAreDeterministic) {
  const auto run_once = [] {
    simnet::Simulation sim;
    SystemConfig cfg = sharded_config(4, 8, 2);
    cfg.faults.crashes.push_back(FaultEvent{1, 5.0, /*restart_after=*/60.0});
    System system(sim, cfg);
    Seconds at = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      system.submit(plans()[i], at);
      at += 15.0;
    }
    return system.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shard_failovers, b.shard_failovers);
  EXPECT_EQ(a.shard_rebuilds, b.shard_rebuilds);
  EXPECT_EQ(a.shard_revalidations, b.shard_revalidations);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// --- Rejoin cache-clear regression -----------------------------------
// A peer confirmed dead by the failure detector and heard from again went
// through an unobserved outage; its cache shards must come back cold,
// exactly as a crash-restart's do. Before the fix, a graceful
// leave + rejoin kept the stale entries.

TEST(ShardSystemTest, RejoinAfterConfirmedDeathClearsTheNodesCaches) {
  SystemConfig cfg;
  cfg.nodes = 3;
  cfg.partition.ap_chunk = 8;
  cfg.cache.answers.max_entries = 64;
  cfg.cache.paragraphs.max_entries = 64;
  cfg.net.detector_placement = true;  // detector runs without link faults

  sched::NodeId preferred = 0;
  {
    simnet::Simulation sim;
    System probe(sim, cfg);
    const auto node = probe.preferred_node(plans()[0]);
    ASSERT_TRUE(node.has_value());
    preferred = *node;
  }

  simnet::Simulation sim;
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  system.prewarm(plans()[0]);
  ASSERT_TRUE(system.answer_cached(preferred, plans()[0]));
  // Graceful leave at 1 s: silence hardens into kDead at the membership
  // timeout; the rejoin broadcast at 20 s is the first sign of life.
  system.schedule_leave(preferred, 1.0);
  system.schedule_join(preferred, 20.0);
  // An unrelated question keeps the cluster running past the rejoin.
  system.submit(plans()[1], 40.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_GE(metrics.detector_rejoins, 1u);
  EXPECT_GE(metrics.rejoin_cache_clears, 1u);
  // The prewarmed entry did not survive the outage.
  EXPECT_FALSE(system.answer_cached(preferred, plans()[0]));
  EXPECT_GE(system.answer_cache_stats(preferred).invalidations, 1u);
  EXPECT_GE(trace.count_containing("rejoined after confirmed death"), 1u);
}

TEST(ShardSystemTest, CrashOfNonHolderLeavesTheMapAlone) {
  simnet::Simulation sim;
  // 1 shard, R=2 on 4 nodes: two nodes are guaranteed to hold nothing.
  SystemConfig cfg = sharded_config(4, 1, 2);
  System system(sim, cfg);
  const shard::ShardMap* map = system.shard_map();
  ASSERT_NE(map, nullptr);
  sched::NodeId idle = 0;
  bool found = false;
  for (sched::NodeId n = 0; n < 4 && !found; ++n) {
    if (map->replica_count(static_cast<shard::NodeId>(n)) == 0) {
      idle = n;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  system.schedule_crash(idle, 5.0);
  system.submit(plans()[0], 10.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.shard_failovers, 0u);
  EXPECT_EQ(metrics.shard_rebuilds, 0u);
  EXPECT_EQ(metrics.questions_degraded, 0u);
}

}  // namespace
}  // namespace qadist::cluster
