// Edge cases of the simulated distributed system: single-node clusters,
// strategy validation, overhead knobs, trace transparency.

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& edge_plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 8; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig cfg(std::size_t nodes, Policy policy = Policy::kDqa) {
  SystemConfig c;
  c.nodes = nodes;
  c.dispatch.policy = policy;
  c.partition.ap_chunk = 8;
  return c;
}

TEST(SystemEdgeTest, SingleNodeClusterHasNoNetworkOverhead) {
  simnet::Simulation sim;
  System system(sim, cfg(1));
  system.submit(edge_plans()[0], 0.0);
  const auto m = system.run();
  EXPECT_EQ(m.completed, 1u);
  // No remote legs: every transfer-overhead component is zero.
  EXPECT_DOUBLE_EQ(m.overhead.keyword_send.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.overhead.paragraph_receive.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.overhead.paragraph_send.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.overhead.answer_receive.mean(), 0.0);
  EXPECT_EQ(m.migrations_qa, 0u);
}

TEST(SystemEdgeTest, IsendForPrIsRejected) {
  simnet::Simulation sim;
  auto c = cfg(4);
  c.partition.pr_strategy = parallel::Strategy::kIsend;
  EXPECT_DEATH({ System system(sim, c); }, "ISEND does not apply to PR");
}

TEST(SystemEdgeTest, PrSendStrategyCompletes) {
  simnet::Simulation sim;
  auto c = cfg(4);
  c.partition.pr_strategy = parallel::Strategy::kSend;
  System system(sim, c);
  system.submit(edge_plans()[0], 0.0);
  const auto m = system.run();
  EXPECT_EQ(m.completed, 1u);
}

TEST(SystemEdgeTest, ApSendAndIsendComplete) {
  for (auto strategy :
       {parallel::Strategy::kSend, parallel::Strategy::kIsend}) {
    simnet::Simulation sim;
    auto c = cfg(4);
    c.partition.ap_strategy = strategy;
    System system(sim, c);
    system.submit(edge_plans()[1], 0.0);
    EXPECT_EQ(system.run().completed, 1u);
  }
}

TEST(SystemEdgeTest, TraceDoesNotPerturbTiming) {
  const auto run = [&](bool traced) {
    simnet::Simulation sim;
    System system(sim, cfg(4));
    TraceRecorder trace;
    if (traced) system.set_trace(&trace);
    system.submit(edge_plans()[2], 0.0);
    return system.run().latencies.mean();
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(SystemEdgeTest, ZeroPerMessageOverheadLowersOverheads) {
  const auto run = [&](Seconds overhead) {
    simnet::Simulation sim;
    auto c = cfg(4);
    c.net.per_message_overhead = overhead;
    System system(sim, c);
    system.submit(edge_plans()[3], 0.0);
    return system.run();
  };
  const auto with = run(2e-3);
  const auto without = run(0.0);
  EXPECT_LT(without.overhead.total_mean(), with.overhead.total_mean());
  EXPECT_LE(without.latencies.mean(), with.latencies.mean());
}

TEST(SystemEdgeTest, MorePerBatchCpuSlowsSmallChunks) {
  const auto ap_time = [&](Seconds per_batch) {
    simnet::Simulation sim;
    auto c = cfg(4);
    c.partition.ap_chunk = 2;  // many batches
    c.partition.per_batch_answer_cpu = per_batch;
    System system(sim, c);
    system.submit(edge_plans()[0], 0.0);
    return system.run().t_ap.mean();
  };
  EXPECT_LT(ap_time(0.0), ap_time(0.5));
}

TEST(SystemEdgeTest, SubmitAfterRunIsRejected) {
  simnet::Simulation sim;
  System system(sim, cfg(1));
  system.submit(edge_plans()[0], 0.0);
  (void)system.run();
  EXPECT_DEATH(system.submit(edge_plans()[0], 1.0), "submit after run");
}

TEST(SystemEdgeTest, ManyNodesFewQuestions) {
  simnet::Simulation sim;
  System system(sim, cfg(16));
  system.submit(edge_plans()[0], 0.0);
  const auto m = system.run();
  EXPECT_EQ(m.completed, 1u);
  // Partitioning across 16 idle nodes must still beat the 1-node run.
  simnet::Simulation sim1;
  System one(sim1, cfg(1));
  one.submit(edge_plans()[0], 0.0);
  EXPECT_LT(m.latencies.mean(), one.run().latencies.mean());
}

TEST(SystemEdgeTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(to_string(Policy::kDns), "DNS");
  EXPECT_EQ(to_string(Policy::kInter), "INTER");
  EXPECT_EQ(to_string(Policy::kDqa), "DQA");
}

}  // namespace
}  // namespace qadist::cluster
