// Fault injection + recovery: a node crash mid-question must never lose
// the question. Worker crashes are recovered per partitioning strategy
// (SEND/ISEND re-partition over the survivors, RECV requeues onto the
// shared deque); host crashes restart the whole question on a survivor.

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using parallel::Strategy;
using qadist::testing::test_world;

/// A private small plan set (the heavy fixture in test_system.cpp is not
/// needed here).
const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 16; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig config(std::size_t nodes, Policy policy = Policy::kDqa) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.dispatch.policy = policy;
  cfg.partition.ap_chunk = 8;  // the test corpus accepts ~60 paragraphs per question
  return cfg;
}

/// Loaded run with two worker crashes mid-flight. Questions arrive fast
/// enough that the crashed nodes are executing work when they die.
Metrics run_with_worker_crashes(SystemConfig cfg, TraceRecorder* trace = nullptr) {
  simnet::Simulation sim;
  cfg.faults.crashes.push_back(FaultEvent{1, 5.0});
  cfg.faults.crashes.push_back(FaultEvent{2, 45.0});
  System system(sim, cfg);
  if (trace != nullptr) system.set_trace(trace);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    system.submit(plans()[i], at);
    at += 20.0;
  }
  return system.run();
}

class FaultPerStrategy : public ::testing::TestWithParam<Strategy> {};

TEST_P(FaultPerStrategy, NoQuestionLostWhenWorkersCrash) {
  auto cfg = config(4);
  cfg.partition.ap_strategy = GetParam();
  const auto metrics = run_with_worker_crashes(cfg);
  EXPECT_EQ(metrics.completed, 12u);
  EXPECT_EQ(metrics.latencies.count(), 12u);
  EXPECT_EQ(metrics.crashes, 2u);
  // The cluster was busy at both crash times: something was actually lost
  // and recovered, not just dodged.
  EXPECT_GT(metrics.legs_lost + metrics.question_restarts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, FaultPerStrategy,
                         ::testing::Values(Strategy::kSend, Strategy::kIsend,
                                           Strategy::kRecv),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FaultRecoveryTest, PrSendStrategySurvivesCrashes) {
  auto cfg = config(4);
  cfg.partition.pr_strategy = Strategy::kSend;
  cfg.partition.pr_chunk = 1;
  const auto metrics = run_with_worker_crashes(cfg);
  EXPECT_EQ(metrics.completed, 12u);
  EXPECT_EQ(metrics.crashes, 2u);
}

TEST(FaultRecoveryTest, HostCrashRestartsQuestionOnSurvivor) {
  simnet::Simulation sim;
  auto cfg = config(2, Policy::kDns);  // DNS: question 0 is hosted on node 0
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  system.submit(plans()[0], 0.0);
  system.schedule_crash(0, 5.0);  // well inside the question's service time
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.crashes, 1u);
  EXPECT_GE(metrics.question_restarts, 1u);
  EXPECT_GE(trace.count_containing("resubmitting"), 1u);
  // The survivor did the work.
  EXPECT_GT(system.node(1).cpu().work_served(), 0.0);
  EXPECT_TRUE(system.node_crashed(0));
}

TEST(FaultRecoveryTest, RestartedNodeRejoinsThePool) {
  simnet::Simulation sim;
  auto cfg = config(2);
  System system(sim, cfg);
  TraceRecorder trace;
  system.set_trace(&trace);
  system.schedule_crash(1, 1.0, /*restart_after=*/10.0);
  // Submissions long after the reboot: the rejoined node must host again.
  Seconds at = 100.0;
  for (int i = 0; i < 6; ++i) {
    system.submit(plans()[static_cast<std::size_t>(i)], at);
    at += 200.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 6u);
  EXPECT_EQ(trace.count_containing("restarted"), 1u);
  EXPECT_FALSE(system.node_crashed(1));
  EXPECT_GT(system.node(1).cpu().work_served(), 0.0);
}

TEST(FaultRecoveryTest, LastLiveNodeIsNeverCrashed) {
  simnet::Simulation sim;
  auto cfg = config(2);
  cfg.faults.crashes.push_back(FaultEvent{0, 5.0});
  cfg.faults.crashes.push_back(FaultEvent{1, 6.0});  // must be skipped
  System system(sim, cfg);
  system.submit(plans()[0], 0.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.crashes, 1u);
  EXPECT_EQ(metrics.crashes_skipped, 1u);
  EXPECT_FALSE(system.node_crashed(1));
}

TEST(FaultRecoveryTest, RandomMtbfCrashesAreDeterministic) {
  const auto run = [] {
    simnet::Simulation sim;
    auto cfg = config(4);
    cfg.faults.mtbf = 60.0;
    cfg.faults.restart_after = 30.0;
    System system(sim, cfg);
    Seconds at = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      system.submit(plans()[i], at);
      at += 30.0;
    }
    return system.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.completed, 8u);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.legs_lost, b.legs_lost);
  EXPECT_EQ(a.items_recovered, b.items_recovered);
  EXPECT_EQ(a.question_restarts, b.question_restarts);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(FaultRecoveryTest, RecoveryMetricsAreConsistent) {
  TraceRecorder trace;
  auto cfg = config(4);
  cfg.partition.ap_strategy = Strategy::kIsend;
  const auto metrics = run_with_worker_crashes(cfg, &trace);
  EXPECT_EQ(metrics.completed, 12u);
  // Recovery bookkeeping lines up: recovered items imply lost legs, and
  // every recovery latency sample came from a recovery event.
  if (metrics.items_recovered > 0) {
    EXPECT_GT(metrics.legs_lost, 0u);
    EXPECT_GT(metrics.recovery_latency.count(), 0u);
    EXPECT_GT(metrics.recovery_latency.mean(), 0.0);
    // Detection is one reply-timeout poll at most: the silence clock runs
    // from the last report, so a crash is noticed within membership_timeout
    // of the poll preceding it — never more than one full timeout late.
    EXPECT_LE(metrics.recovery_latency.mean(), 2.0 * cfg.net.membership_timeout);
  }
  EXPECT_EQ(trace.count_containing("crashed"), 2u);
}

}  // namespace
}  // namespace qadist::cluster
