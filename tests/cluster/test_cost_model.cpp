#include "cluster/cost_model.hpp"

#include <gtest/gtest.h>

#include "cluster/plan.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const CostModel& shared_cost_model() {
  static const CostModel model = [] {
    const auto& world = test_world();
    return CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 20));
  }();
  return model;
}

TEST(CostModelTest, AverageSequentialTimeMatchesAnchors) {
  // Replaying an average question's plan on the reference hardware must
  // land near the paper's Table 8 single-processor total (158.47 s):
  // calibration promises the averages, not each question.
  const auto& world = test_world();
  const auto& cost = shared_cost_model();
  const auto& anchors = cost.anchors();

  double total = 0.0;
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i) {
    const auto plan = make_plan(*world.engine, cost, world.questions[i]);
    total += plan.total_cpu_seconds() +
             plan.total_disk_bytes() /
                 anchors.reference_disk.bytes_per_second;
  }
  const double avg = total / static_cast<double>(n);
  const double expected = anchors.t_qp + anchors.t_pr_total +
                          anchors.t_ps_total + anchors.t_po +
                          anchors.t_ap_total;
  EXPECT_NEAR(avg, expected, expected * 0.02);
}

TEST(CostModelTest, ModuleProportionsMatchTable2Shape) {
  // AP must dominate (paper Table 2: 69.7% in TREC-9), PR second.
  const auto& world = test_world();
  const auto& cost = shared_cost_model();
  const auto plan = make_plan(*world.engine, cost, world.questions[0]);

  double pr = 0.0, ps = 0.0, ap = 0.0;
  for (const auto& u : plan.pr_units) {
    pr += u.demand.cpu_seconds +
          u.demand.disk_bytes / cost.anchors().reference_disk.bytes_per_second;
    ps += u.ps.cpu_seconds;
  }
  for (const auto& u : plan.ap_units) ap += u.demand.cpu_seconds;

  EXPECT_GT(ap, pr);
  EXPECT_GT(pr, ps);
  EXPECT_GT(ps, plan.qp.cpu_seconds + plan.po.cpu_seconds);
}

TEST(CostModelTest, DemandScalesWithWork) {
  const auto& cost = shared_cost_model();
  qa::RetrievalWork small{100, 10, 1000};
  qa::RetrievalWork big{1000, 100, 10000};
  EXPECT_LT(cost.pr(small).disk_bytes, cost.pr(big).disk_bytes);
  EXPECT_LT(cost.pr(small).cpu_seconds, cost.pr(big).cpu_seconds);

  qa::AnswerWork light{1, 50, 2, 1};
  qa::AnswerWork heavy{1, 500, 20, 10};
  EXPECT_LT(cost.ap(light).cpu_seconds, cost.ap(heavy).cpu_seconds);
}

TEST(CostModelTest, ApIsPureCpu) {
  const auto& cost = shared_cost_model();
  qa::AnswerWork work{1, 100, 5, 3};
  EXPECT_DOUBLE_EQ(cost.ap(work).disk_bytes, 0.0);
}

TEST(PlanTest, PlanAnswersMatchEngine) {
  const auto& world = test_world();
  const auto& cost = shared_cost_model();
  const auto& q = world.questions[2];
  const auto plan = make_plan(*world.engine, cost, q);
  const auto direct = world.engine->answer(q);
  ASSERT_EQ(plan.answers.size(), direct.answers.size());
  for (std::size_t i = 0; i < plan.answers.size(); ++i) {
    EXPECT_EQ(plan.answers[i].candidate, direct.answers[i].candidate);
  }
}

TEST(PlanTest, UnitCountsMatchPipeline) {
  const auto& world = test_world();
  const auto& cost = shared_cost_model();
  const auto& q = world.questions[3];
  const auto plan = make_plan(*world.engine, cost, q);
  const auto direct = world.engine->answer(q);

  EXPECT_EQ(plan.pr_units.size(), world.engine->subcollection_count());
  EXPECT_EQ(plan.ap_units.size(), direct.work.paragraphs_accepted);
  std::size_t retrieved = 0;
  for (const auto& u : plan.pr_units) retrieved += u.paragraphs;
  EXPECT_EQ(retrieved, direct.work.paragraphs_retrieved);
}

TEST(PlanTest, ApUnitCostDecreasesWithRankOnAverage) {
  // PO orders paragraphs by relevance, which correlates with AP work —
  // the property that makes ISEND effective (paper Sec. 4.1.3). Check the
  // first-half average cost exceeds the second-half average.
  const auto& world = test_world();
  const auto& cost = shared_cost_model();
  double front = 0.0, back = 0.0;
  std::size_t front_n = 0, back_n = 0;
  for (std::size_t qi = 0; qi < 10; ++qi) {
    const auto plan = make_plan(*world.engine, cost, world.questions[qi]);
    const std::size_t half = plan.ap_units.size() / 2;
    if (half == 0) continue;
    for (std::size_t i = 0; i < half; ++i) {
      front += plan.ap_units[i].demand.cpu_seconds;
      ++front_n;
    }
    for (std::size_t i = half; i < plan.ap_units.size(); ++i) {
      back += plan.ap_units[i].demand.cpu_seconds;
      ++back_n;
    }
  }
  ASSERT_GT(front_n, 0u);
  ASSERT_GT(back_n, 0u);
  EXPECT_GT(front / static_cast<double>(front_n),
            back / static_cast<double>(back_n));
}

}  // namespace
}  // namespace qadist::cluster
