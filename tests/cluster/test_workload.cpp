#include "cluster/workload.hpp"

#include <gtest/gtest.h>

#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

std::vector<QuestionPlan> small_plans() {
  const auto& world = test_world();
  const auto cost = CostModel::calibrate(
      *world.engine,
      std::span<const corpus::Question>(world.questions).subspan(0, 8));
  std::vector<QuestionPlan> out;
  for (std::size_t i = 0; i < 10; ++i) {
    out.push_back(make_plan(*world.engine, cost, world.questions[i]));
  }
  return out;
}

TEST(WorkloadTest, MeanServiceMatchesManualComputation) {
  const auto plans = small_plans();
  const auto disk = Bandwidth::from_mbps(250);
  double manual = 0.0;
  for (const auto& p : plans) {
    manual += p.total_cpu_seconds() +
              p.total_disk_bytes() / disk.bytes_per_second;
  }
  manual /= static_cast<double>(plans.size());
  EXPECT_NEAR(mean_service_seconds(plans, disk), manual, 1e-9);
  EXPECT_EQ(mean_service_seconds({}, disk), 0.0);
}

TEST(WorkloadTest, BimodalMixScalesAlternatePlans) {
  auto plans = small_plans();
  std::vector<double> before;
  for (const auto& p : plans) before.push_back(p.total_cpu_seconds());
  apply_bimodal_mix(plans, 0.5);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const double expected = (i % 2 == 0) ? before[i] * 0.5 : before[i];
    EXPECT_NEAR(plans[i].total_cpu_seconds(), expected, 1e-9) << i;
  }
}

TEST(WorkloadTest, OverloadSubmitsEightPerNodeByDefault) {
  const auto plans = small_plans();
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 3;
  cfg.ap_chunk = 8;
  System system(sim, cfg);
  submit_overload(system, plans, OverloadWorkload{});
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 24u);  // 8 x 3 nodes
}

TEST(WorkloadTest, OverloadArrivalRateMatchesFactor) {
  const auto plans = small_plans();
  const double service = mean_service_seconds(plans, Bandwidth::from_mbps(250));
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.ap_chunk = 8;
  System system(sim, cfg);
  OverloadWorkload workload;
  workload.count = 64;
  workload.overload_factor = 2.0;
  workload.seed = 5;
  submit_overload(system, plans, workload);
  const auto metrics = system.run();
  // The last arrival should land near count x mean_gap, where mean_gap =
  // service / (overload x nodes). Uniform gaps: wide tolerance.
  const double expected_window = 64.0 * service / (2.0 * 4.0);
  EXPECT_GT(metrics.makespan, 0.5 * expected_window);
  EXPECT_EQ(metrics.completed, 64u);
}

TEST(WorkloadTest, SerialDrainsBetweenQuestions) {
  const auto plans = small_plans();
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.ap_chunk = 8;
  System system(sim, cfg);
  SerialWorkload workload;
  workload.count = 5;
  submit_serial(system, plans, workload);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 5u);
  // Fully drained between questions: the max latency is far below the gap,
  // so no queueing — p95 close to the mean of individual runtimes.
  EXPECT_LT(metrics.latencies.max(),
            10.0 * mean_service_seconds(plans, Bandwidth::from_mbps(250)));
}

TEST(WorkloadTest, SerialStrideSelectsPlans) {
  const auto plans = small_plans();
  // stride 2 offset 1 picks plans 1,3,5,...; verify via determinism: two
  // systems given the same selection produce identical latencies.
  const auto run = [&] {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.ap_chunk = 8;
    System system(sim, cfg);
    SerialWorkload workload;
    workload.count = 4;
    workload.offset = 1;
    workload.stride = 2;
    submit_serial(system, plans, workload);
    return system.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
}

TEST(WorkloadTest, SameSeedSameArrivalsAcrossPolicies) {
  const auto plans = small_plans();
  const auto first_completion = [&](Policy policy) {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.policy = policy;
    cfg.ap_chunk = 8;
    System system(sim, cfg);
    OverloadWorkload workload;
    workload.count = 6;
    workload.seed = 9;
    submit_overload(system, plans, workload);
    const auto m = system.run();
    return m.submitted;
  };
  EXPECT_EQ(first_completion(Policy::kDns), first_completion(Policy::kDqa));
}

}  // namespace
}  // namespace qadist::cluster
