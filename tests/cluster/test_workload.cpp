#include "cluster/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

std::vector<QuestionPlan> small_plans() {
  const auto& world = test_world();
  const auto cost = CostModel::calibrate(
      *world.engine,
      std::span<const corpus::Question>(world.questions).subspan(0, 8));
  std::vector<QuestionPlan> out;
  for (std::size_t i = 0; i < 10; ++i) {
    out.push_back(make_plan(*world.engine, cost, world.questions[i]));
  }
  return out;
}

TEST(WorkloadTest, MeanServiceMatchesManualComputation) {
  const auto plans = small_plans();
  const auto disk = Bandwidth::from_mbps(250);
  double manual = 0.0;
  for (const auto& p : plans) {
    manual += p.total_cpu_seconds() +
              p.total_disk_bytes() / disk.bytes_per_second;
  }
  manual /= static_cast<double>(plans.size());
  EXPECT_NEAR(mean_service_seconds(plans, disk), manual, 1e-9);
  EXPECT_EQ(mean_service_seconds({}, disk), 0.0);
}

TEST(WorkloadTest, BimodalMixScalesAlternatePlans) {
  auto plans = small_plans();
  std::vector<double> before;
  for (const auto& p : plans) before.push_back(p.total_cpu_seconds());
  apply_bimodal_mix(plans, 0.5);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const double expected = (i % 2 == 0) ? before[i] * 0.5 : before[i];
    EXPECT_NEAR(plans[i].total_cpu_seconds(), expected, 1e-9) << i;
  }
}

TEST(WorkloadTest, OverloadSubmitsEightPerNodeByDefault) {
  const auto plans = small_plans();
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 3;
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  submit_overload(system, plans, OverloadWorkload{});
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 24u);  // 8 x 3 nodes
}

TEST(WorkloadTest, OverloadArrivalRateMatchesFactor) {
  const auto plans = small_plans();
  const double service = mean_service_seconds(plans, Bandwidth::from_mbps(250));
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  OverloadWorkload workload;
  workload.count = 64;
  workload.overload_factor = 2.0;
  workload.seed = 5;
  submit_overload(system, plans, workload);
  const auto metrics = system.run();
  // The last arrival should land near count x mean_gap, where mean_gap =
  // service / (overload x nodes). Uniform gaps: wide tolerance.
  const double expected_window = 64.0 * service / (2.0 * 4.0);
  EXPECT_GT(metrics.makespan, 0.5 * expected_window);
  EXPECT_EQ(metrics.completed, 64u);
}

TEST(WorkloadTest, SerialDrainsBetweenQuestions) {
  const auto plans = small_plans();
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  SerialWorkload workload;
  workload.count = 5;
  submit_serial(system, plans, workload);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 5u);
  // Fully drained between questions: the max latency is far below the gap,
  // so no queueing — p95 close to the mean of individual runtimes.
  EXPECT_LT(metrics.latencies.max(),
            10.0 * mean_service_seconds(plans, Bandwidth::from_mbps(250)));
}

TEST(WorkloadTest, SerialStrideSelectsPlans) {
  const auto plans = small_plans();
  // stride 2 offset 1 picks plans 1,3,5,...; verify via determinism: two
  // systems given the same selection produce identical latencies.
  const auto run = [&] {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.partition.ap_chunk = 8;
    System system(sim, cfg);
    SerialWorkload workload;
    workload.count = 4;
    workload.offset = 1;
    workload.stride = 2;
    submit_serial(system, plans, workload);
    return system.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
}

TEST(WorkloadTest, PickSequenceLegacyPathMatchesHistoricFormula) {
  // repeat_exponent == 0 must reproduce the pre-Zipf deterministic scan
  // bit-for-bit, so every existing seeded experiment keeps its stream.
  OverloadWorkload workload;
  workload.seed = 11;
  const auto picks = overload_pick_sequence(workload, 10, 25);
  ASSERT_EQ(picks.size(), 25u);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    EXPECT_EQ(picks[i], (i * 7 + workload.seed * 13) % 10) << i;
  }
}

TEST(WorkloadTest, PickSequenceZipfIsDeterministicAndBounded) {
  OverloadWorkload workload;
  workload.seed = 4;
  workload.repeat_exponent = 1.0;
  workload.distinct_questions = 6;
  const auto a = overload_pick_sequence(workload, 50, 100);
  const auto b = overload_pick_sequence(workload, 50, 100);
  EXPECT_EQ(a, b);
  std::set<std::size_t> unique(a.begin(), a.end());
  EXPECT_LE(unique.size(), 6u);  // the configured distinct population
  for (const auto pick : a) EXPECT_LT(pick, 50u);

  workload.seed = 5;  // a different seed draws a different stream
  const auto c = overload_pick_sequence(workload, 50, 100);
  EXPECT_NE(a, c);
}

TEST(WorkloadTest, ZipfRotationKeepsDistinctCountExact) {
  // The rank -> plan rotation (rank + seed*13) % plan_count is injective
  // over ranks [0, distinct), so a long enough stream must touch exactly
  // `distinct_questions` distinct plans — no collisions shrinking the
  // population, no leaks past it.
  OverloadWorkload workload;
  workload.seed = 3;
  workload.repeat_exponent = 0.8;  // modest skew so tail ranks appear
  workload.distinct_questions = 8;
  const auto picks = overload_pick_sequence(workload, 40, 2000);
  const std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const auto pick : picks) EXPECT_LT(pick, 40u);

  // distinct_questions past the plan count clamps to the plan count.
  workload.distinct_questions = 100;
  const auto clamped = overload_pick_sequence(workload, 5, 2000);
  const std::set<std::size_t> clamped_unique(clamped.begin(), clamped.end());
  EXPECT_EQ(clamped_unique.size(), 5u);
}

TEST(WorkloadDeathTest, OverloadPanicsOnZeroWorkPlanSet) {
  // A zero-work plan set used to collapse every arrival gap to zero and
  // submit the whole stream at t=0 silently; now it trips a check.
  auto plans = small_plans();
  for (auto& p : plans) scale_plan(p, 0.0);
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  EXPECT_DEATH(submit_overload(system, plans, OverloadWorkload{}),
               "zero mean service");
}

TEST(WorkloadTest, PickSequenceSkewConcentratesRepeats) {
  const auto top_share = [](double exponent) {
    OverloadWorkload workload;
    workload.seed = 21;
    workload.repeat_exponent = exponent;
    workload.distinct_questions = 40;
    const auto picks = overload_pick_sequence(workload, 100, 400);
    std::map<std::size_t, std::size_t> freq;
    for (const auto p : picks) ++freq[p];
    std::size_t top = 0;
    for (const auto& [pick, count] : freq) top = std::max(top, count);
    return static_cast<double>(top) / static_cast<double>(picks.size());
  };
  // Stronger skew => the most popular question takes a larger share of
  // the stream (at s=1.5 over 40 ranks, rank 0 alone is ~60%).
  EXPECT_GT(top_share(1.5), 2.0 * top_share(0.3));
}

TEST(WorkloadTest, ZipfOverloadSubmitsTheSequenceItAdvertises) {
  const auto plans = small_plans();
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.partition.ap_chunk = 8;
  cfg.cache.answers.max_entries = 32;
  cfg.cache.paragraphs.max_entries = 32;
  System system(sim, cfg);
  OverloadWorkload workload;
  workload.count = 16;
  workload.seed = 2;
  workload.repeat_exponent = 1.0;
  workload.distinct_questions = 3;
  // Prewarm exactly the advertised picks: if submit_overload used any
  // other sequence, at least one question would miss.
  const auto picks =
      overload_pick_sequence(workload, plans.size(), workload.count);
  for (const auto pick : picks) system.prewarm(plans[pick]);
  submit_overload(system, plans, workload);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 16u);
  EXPECT_EQ(metrics.cache_hits, 16u);
  EXPECT_EQ(metrics.cache_misses, 0u);
}

TEST(WorkloadTest, SameSeedSameArrivalsAcrossPolicies) {
  const auto plans = small_plans();
  const auto first_completion = [&](Policy policy) {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.dispatch.policy = policy;
    cfg.partition.ap_chunk = 8;
    System system(sim, cfg);
    OverloadWorkload workload;
    workload.count = 6;
    workload.seed = 9;
    submit_overload(system, plans, workload);
    const auto m = system.run();
    return m.submitted;
  };
  EXPECT_EQ(first_completion(Policy::kDns), first_completion(Policy::kDqa));
}

}  // namespace
}  // namespace qadist::cluster
