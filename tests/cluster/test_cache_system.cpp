#include <gtest/gtest.h>

#include <vector>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "obs/span.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

/// A small plan pool built once (planning runs the real pipeline).
const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> all = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 8; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return all;
}

SystemConfig cached_config(std::size_t nodes) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.partition.ap_chunk = 8;
  cfg.cache.answers.max_entries = 64;
  cfg.cache.paragraphs.max_entries = 64;
  return cfg;
}

TEST(CacheSystemTest, PrewarmedAnswerShortCircuitsThePipeline) {
  // Uncached reference latency for the same question.
  double uncached = 0.0;
  {
    simnet::Simulation sim;
    SystemConfig cfg = cached_config(1);
    cfg.cache = {};  // caches off
    System system(sim, cfg);
    system.submit(plans()[0], 0.0);
    uncached = system.run().latencies.mean();
  }

  simnet::Simulation sim;
  System system(sim, cached_config(1));
  system.prewarm(plans()[0]);
  EXPECT_TRUE(system.answer_cached(0, plans()[0]));
  system.submit(plans()[0], 0.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_EQ(metrics.cache_misses, 0u);
  // The hit pays only dispatch + the cache probe, not the ~100 s pipeline.
  EXPECT_LT(metrics.latencies.mean(), 0.05 * uncached);
  EXPECT_GT(uncached, 1.0);
}

TEST(CacheSystemTest, ParagraphCacheSkipsDiskBoundRetrieval) {
  // Only the paragraph cache is enabled: the answer probe misses, but the
  // PR stage (the disk-bound bulk of the question) is skipped.
  double uncached = 0.0;
  {
    simnet::Simulation sim;
    SystemConfig cfg = cached_config(1);
    cfg.cache = {};
    System system(sim, cfg);
    system.submit(plans()[1], 0.0);
    uncached = system.run().latencies.mean();
  }

  simnet::Simulation sim;
  SystemConfig cfg = cached_config(1);
  cfg.cache.answers.max_entries = 0;  // paragraph cache only
  System system(sim, cfg);
  system.prewarm(plans()[1]);
  EXPECT_FALSE(system.answer_cached(0, plans()[1]));
  system.submit(plans()[1], 0.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_EQ(metrics.pr_cache_hits, 1u);
  // Faster than the full pipeline, but it still runs QP/PS/PO/AP.
  EXPECT_LT(metrics.latencies.mean(), uncached);
  EXPECT_GT(metrics.latencies.mean(), 0.05 * uncached);
  EXPECT_DOUBLE_EQ(metrics.t_pr.mean(), 0.0);  // PR never ran
}

TEST(CacheSystemTest, CrashInvalidatesTheNodesShard) {
  // Learn which node the affinity hash prefers for this plan.
  sched::NodeId preferred = 0;
  {
    simnet::Simulation sim;
    System probe(sim, cached_config(2));
    const auto node = probe.preferred_node(plans()[0]);
    ASSERT_TRUE(node.has_value());
    preferred = *node;
  }

  simnet::Simulation sim;
  SystemConfig cfg = cached_config(2);
  cfg.faults.crashes.push_back(FaultEvent{preferred, 5.0});
  System system(sim, cfg);
  system.prewarm(plans()[0]);
  EXPECT_TRUE(system.answer_cached(preferred, plans()[0]));
  // Submitted after the crash: the warm shard is gone, so this must be a
  // miss, recompute on a survivor, and still drain.
  system.submit(plans()[0], 10.0);
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_GE(metrics.cache_invalidations, 2u);  // answer + paragraph entries
  EXPECT_EQ(metrics.crashes, 1u);
}

TEST(CacheSystemTest, SurvivingShardsKeepServingAfterACrash) {
  // Warm both nodes' shards with their own plans, crash one node, submit
  // everything: the surviving shard's questions still hit.
  simnet::Simulation sim;
  SystemConfig cfg = cached_config(2);
  cfg.faults.crashes.push_back(FaultEvent{0, 5.0});
  System system(sim, cfg);
  std::size_t survivor_plans = 0;
  for (const auto& plan : plans()) {
    system.prewarm(plan);
    const auto node = system.preferred_node(plan);
    if (node.has_value() && *node == 1) ++survivor_plans;
  }
  Seconds at = 10.0;
  for (const auto& plan : plans()) {
    system.submit(plan, at);
    at += 1.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, plans().size());
  // Every plan warmed on node 1 should still be served from cache (node 1
  // is never overloaded enough here to reroute a cached question).
  EXPECT_GE(metrics.cache_hits, survivor_plans);
  EXPECT_GT(metrics.cache_invalidations, 0u);
}

TEST(CacheSystemTest, SameSeedSameHitSequence) {
  const auto run_once = [](std::uint64_t seed) {
    simnet::Simulation sim;
    SystemConfig cfg = cached_config(2);
    cfg.seed = seed;
    System system(sim, cfg);
    OverloadWorkload load;
    load.seed = seed;
    load.count = 24;
    load.repeat_exponent = 1.0;
    load.distinct_questions = 4;
    submit_overload(system, plans(), load);
    return system.run();
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.pr_cache_hits, b.pr_cache_hits);
  EXPECT_EQ(a.affinity_routes, b.affinity_routes);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.cache_hits, 0u);  // the skewed stream actually repeats
}

TEST(CacheSystemTest, TracingDoesNotPerturbCachedRuns) {
  const auto run_once = [](bool traced) {
    simnet::Simulation sim;
    System system(sim, cached_config(2));
    obs::Tracer tracer;
    if (traced) system.set_tracer(&tracer);
    OverloadWorkload load;
    load.seed = 3;
    load.count = 16;
    load.repeat_exponent = 1.0;
    load.distinct_questions = 4;
    submit_overload(system, plans(), load);
    const auto metrics = system.run();
    if (traced) {
      EXPECT_GT(tracer.spans().size(), 0u);
    }
    return metrics;
  };
  const auto untraced = run_once(false);
  const auto traced = run_once(true);
  EXPECT_DOUBLE_EQ(untraced.makespan, traced.makespan);
  EXPECT_EQ(untraced.cache_hits, traced.cache_hits);
  EXPECT_EQ(untraced.cache_misses, traced.cache_misses);
}

TEST(CacheSystemTest, UncachedConfigReportsZeroCacheActivity) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  system.submit(plans()[0], 0.0);
  system.submit(plans()[0], 1.0);  // a repeat, but no cache to serve it
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.cache_hits + metrics.cache_misses, 0u);
  EXPECT_EQ(metrics.affinity_routes + metrics.affinity_fallbacks, 0u);
}

}  // namespace
}  // namespace qadist::cluster
