#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

/// A private small plan set (the heavy fixture in test_system.cpp is not
/// needed here).
const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 12; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig config(std::size_t nodes, Policy policy = Policy::kDqa) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.dispatch.policy = policy;
  cfg.partition.ap_chunk = 8;
  return cfg;
}

TEST(MembershipTest, LeftNodeReceivesNoNewWork) {
  simnet::Simulation sim;
  System system(sim, config(4));
  system.schedule_leave(3, 0.0);
  // Submissions well after the membership timeout has expired node 3.
  Seconds at = 10.0;
  for (int i = 0; i < 8; ++i) {
    system.submit(plans()[static_cast<std::size_t>(i)], at);
    at += 500.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 8u);
  // Node 3 never hosted or executed anything.
  EXPECT_EQ(system.node(3).cpu().work_served(), 0.0);
  EXPECT_GT(system.node(0).cpu().work_served(), 0.0);
}

TEST(MembershipTest, DnsQuestionsRerouteOffDeadNode) {
  // Even the DNS policy (no dispatchers) must not run work on a node that
  // left the pool: the front-end reroutes to a live member.
  simnet::Simulation sim;
  System system(sim, config(2, Policy::kDns));
  system.schedule_leave(1, 0.0);
  Seconds at = 10.0;
  for (int i = 0; i < 4; ++i) {
    system.submit(plans()[static_cast<std::size_t>(i)], at);
    at += 400.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 4u);
  EXPECT_EQ(system.node(1).cpu().work_served(), 0.0);
}

TEST(MembershipTest, JoiningNodeStartsReceivingWork) {
  simnet::Simulation sim;
  System system(sim, config(2));
  system.schedule_leave(1, 0.0);
  system.schedule_join(1, 1000.0);
  // First question while node 1 is out; later ones after it joined.
  system.submit(plans()[0], 10.0);
  Seconds at = 1100.0;
  for (int i = 1; i < 5; ++i) {
    system.submit(plans()[static_cast<std::size_t>(i)], at);
    at += 400.0;
  }
  const auto metrics = system.run();
  EXPECT_EQ(metrics.completed, 5u);
  // After rejoining, DQA partitioning pulls node 1 into PR/AP legs.
  EXPECT_GT(system.node(1).cpu().work_served(), 0.0);
}

TEST(MembershipTest, LoadTableShrinksAndRecovers) {
  simnet::Simulation sim;
  System system(sim, config(3));
  system.schedule_leave(2, 0.0);
  system.schedule_join(2, 50.0);
  system.submit(plans()[0], 10.0);   // keeps the run alive past t=50
  system.submit(plans()[1], 60.0);
  (void)system.run();
  // By the end all three broadcast again.
  EXPECT_EQ(system.load_table().size(), 3u);
}

// ------------------------------------------------------- memory pressure

TEST(MemoryPressureTest, MultiplierDisabledByDefault) {
  simnet::Simulation sim;
  Node node(sim, 0, NodeConfig{});
  for (int i = 0; i < 10; ++i) node.question_arrived();
  EXPECT_DOUBLE_EQ(node.work_multiplier(), 1.0);
}

TEST(MemoryPressureTest, MultiplierGrowsPastSlots) {
  simnet::Simulation sim;
  NodeConfig cfg;
  cfg.memory_slots = 4;
  cfg.thrash_exponent = 1.0;
  Node node(sim, 0, cfg);
  for (int i = 0; i < 4; ++i) node.question_arrived();
  EXPECT_DOUBLE_EQ(node.work_multiplier(), 1.0);  // at capacity: no thrash
  node.question_arrived();
  EXPECT_DOUBLE_EQ(node.work_multiplier(), 5.0 / 4.0);
  for (int i = 0; i < 3; ++i) node.question_arrived();
  EXPECT_DOUBLE_EQ(node.work_multiplier(), 2.0);
  node.question_departed();
  EXPECT_DOUBLE_EQ(node.work_multiplier(), 7.0 / 4.0);
}

TEST(MemoryPressureTest, ThrashingSlowsOverloadedRuns) {
  const auto run = [&](double exponent) {
    simnet::Simulation sim;
    auto cfg = config(2);
    cfg.node.thrash_exponent = exponent;
    System system(sim, cfg);
    // 12 questions dumped at once on 2 nodes: deep residency.
    for (std::size_t i = 0; i < 12; ++i) {
      system.submit(plans()[i], static_cast<double>(i));
    }
    return system.run();
  };
  const auto without = run(0.0);
  const auto with = run(1.0);
  EXPECT_EQ(without.completed, 12u);
  EXPECT_EQ(with.completed, 12u);
  EXPECT_GT(with.latencies.mean(), 1.2 * without.latencies.mean());
}

TEST(MemoryPressureTest, NoEffectAtLowLoad) {
  const auto run = [&](double exponent) {
    simnet::Simulation sim;
    auto cfg = config(4);
    cfg.node.thrash_exponent = exponent;
    System system(sim, cfg);
    system.submit(plans()[0], 0.0);
    return system.run();
  };
  EXPECT_DOUBLE_EQ(run(0.0).latencies.mean(), run(2.0).latencies.mean());
}

}  // namespace
}  // namespace qadist::cluster
