// Unreliable-network layer, end to end: message drops are absorbed by the
// retry envelope, partitions drive the failure detector through its
// suspect -> dead -> rejoin lifecycle, and a question that cannot beat its
// deadline finishes degraded instead of hanging.

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using parallel::Strategy;
using qadist::testing::test_world;

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 16; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

SystemConfig config(std::size_t nodes) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_chunk = 8;
  return cfg;
}

Metrics run_loaded(SystemConfig cfg, std::size_t questions = 12,
                   Seconds gap = 20.0) {
  simnet::Simulation sim;
  System system(sim, cfg);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < questions; ++i) {
    system.submit(plans()[i % plans().size()], at);
    at += gap;
  }
  return system.run();
}

TEST(NetworkFaultTest, FaultFreeRunsReportZeroNetworkActivity) {
  const auto m = run_loaded(config(4));
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.net_drops, 0u);
  EXPECT_EQ(m.net_partition_drops, 0u);
  EXPECT_EQ(m.net_duplicates, 0u);
  EXPECT_EQ(m.net_retries, 0u);
  EXPECT_EQ(m.net_send_failures, 0u);
  EXPECT_EQ(m.legs_unreachable, 0u);
  EXPECT_EQ(m.detector_suspicions, 0u);
  EXPECT_EQ(m.questions_degraded, 0u);
}

class DropsPerStrategy : public ::testing::TestWithParam<Strategy> {};

TEST_P(DropsPerStrategy, RetriesAbsorbModerateLoss) {
  auto cfg = config(4);
  cfg.partition.ap_strategy = GetParam();
  cfg.net.faults.drop_probability = 0.10;
  cfg.net.faults.duplicate_probability = 0.05;
  cfg.net.faults.jitter_min = 0.001;
  cfg.net.faults.jitter_max = 0.01;
  const auto m = run_loaded(cfg);
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.latencies.count(), 12u);
  EXPECT_GT(m.net_drops, 0u);
  EXPECT_GT(m.net_retries, 0u);
  // 10% loss with 3 retries: a whole send failing is a ~1e-4 event, so
  // every question finishes whole.
  EXPECT_EQ(m.questions_degraded, 0u);
  // Duplicates were deduplicated, never double-counted as answers.
  EXPECT_EQ(m.net_dedup_dropped, m.net_duplicates);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DropsPerStrategy,
                         ::testing::Values(Strategy::kSend, Strategy::kIsend,
                                           Strategy::kRecv),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(NetworkFaultTest, FaultedRunsAreDeterministic) {
  const auto run = [] {
    auto cfg = config(4);
    cfg.net.faults.drop_probability = 0.15;
    cfg.net.faults.duplicate_probability = 0.05;
    cfg.net.faults.jitter_min = 0.001;
    cfg.net.faults.jitter_max = 0.02;
    cfg.net.reliability.question_deadline = 600.0;
    return run_loaded(cfg);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.completed, 12u);
  EXPECT_EQ(a.net_drops, b.net_drops);
  EXPECT_EQ(a.net_duplicates, b.net_duplicates);
  EXPECT_EQ(a.net_retries, b.net_retries);
  EXPECT_EQ(a.legs_unreachable, b.legs_unreachable);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(NetworkFaultTest, PartitionDrivesSuspectDeadRejoinLifecycle) {
  auto cfg = config(4);
  // Isolate node 3 for 15 s mid-run: long enough (>> membership_timeout)
  // for the detector to confirm it dead, then let it rejoin.
  cfg.net.faults.partitions.push_back(
      simnet::PartitionWindow{30.0, 45.0, {3}});
  const auto m = run_loaded(cfg, 8, 30.0);
  EXPECT_EQ(m.completed, 8u);
  EXPECT_GT(m.net_partition_drops, 0u);
  EXPECT_GE(m.detector_suspicions, 1u);
  EXPECT_GE(m.detector_deaths, 1u);
  EXPECT_GE(m.detector_rejoins, 1u);
}

TEST(NetworkFaultTest, HopelessDeadlineDegradesInsteadOfHanging) {
  auto cfg = config(4);
  // Heavy loss: sends regularly exhaust their retries, legs go
  // unreachable, and the 5 s budget (far under a question's service time)
  // forces the coordinator to give up on the lost work.
  cfg.net.faults.drop_probability = 0.5;
  cfg.net.reliability.question_deadline = 5.0;
  const auto m = run_loaded(cfg, 8, 30.0);
  EXPECT_EQ(m.completed, 8u);  // degraded, but every question answers
  EXPECT_EQ(m.latencies.count(), 8u);
  EXPECT_GT(m.net_send_failures, 0u);
  EXPECT_GT(m.legs_unreachable, 0u);
  EXPECT_GE(m.questions_degraded, 1u);
}

TEST(NetworkFaultTest, DegradedAnswersAreNotCached) {
  auto cfg = config(4);
  cfg.net.faults.drop_probability = 0.5;
  cfg.net.reliability.question_deadline = 5.0;
  cfg.cache.answers.max_entries = 32;
  simnet::Simulation sim;
  System system(sim, cfg);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    system.submit(plans()[0], at);  // the same question over and over
    at += 30.0;
  }
  const auto m = system.run();
  EXPECT_EQ(m.completed, 8u);
  // A cached answer must never replay a degraded (partial) result: every
  // hit served a full answer, so hits can only come from full completions.
  EXPECT_LE(m.cache_hits + m.questions_degraded, 8u);
}

TEST(NetworkFaultTest, DropsDelayButCrashRecoveryStillWorks) {
  auto cfg = config(4);
  cfg.net.faults.drop_probability = 0.05;
  cfg.faults.crashes.push_back(FaultEvent{1, 5.0});
  const auto m = run_loaded(cfg);
  EXPECT_EQ(m.completed, 12u);
  EXPECT_EQ(m.crashes, 1u);
}

}  // namespace
}  // namespace qadist::cluster
