// Chaos soak: random message loss, duplication, jitter, a scripted
// partition, AND random node crashes with restarts, all at once, for ten
// simulated minutes. The invariant under test is liveness — every
// submitted question either completes in full or completes flagged
// degraded; nothing hangs — plus bit-level determinism of the whole run.
//
// Runs as its own ctest binary (it soaks longer than a unit test should)
// and honors QADIST_CHAOS_SEED so CI can pin the schedule while a local
// run can explore other seeds.

#include <gtest/gtest.h>

#include <cstdlib>

#include "cluster/system.hpp"
#include "common/rng.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 16; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

std::uint64_t chaos_seed() {
  const char* env = std::getenv("QADIST_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1913;
  return std::strtoull(env, nullptr, 10);
}

Metrics soak(std::uint64_t seed, bool sharded = false, bool gray = false) {
  simnet::Simulation sim;
  SystemConfig cfg;
  if (gray) {
    // Random gray-fault schedule derived from the soak seed: three
    // degradation windows at random nodes/times/severities, plus the full
    // tail toolkit and hint hysteresis to react to them. Same seed, same
    // schedule — the replay test still holds bit for bit.
    Rng gray_rng(seed ^ 0xa0761d6478bd642fULL);
    for (int i = 0; i < 3; ++i) {
      simnet::GrayFaultEvent ev;
      ev.node = static_cast<sched::NodeId>(gray_rng.uniform_u64(0, 5));
      ev.at = gray_rng.uniform(0.0, 400.0);
      ev.recover_after = gray_rng.uniform(30.0, 150.0);
      ev.cpu_factor = gray_rng.uniform(2.0, 10.0);
      ev.disk_factor = gray_rng.uniform(2.0, 10.0);
      cfg.gray.events.push_back(ev);
    }
    cfg.tail.hedge = true;
    cfg.tail.tied = true;
    cfg.tail.latency_aware = true;
    cfg.net.hint_hysteresis = 30.0;
  }
  if (sharded) {
    // Partially-replicated corpus on top of all the chaos: crashes now also
    // cost shard failovers, background rebuilds, and rejoin re-validation.
    cfg.shard.num_shards = 8;
    cfg.shard.replication = 2;
  }
  cfg.nodes = 6;
  cfg.seed = seed;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_strategy = parallel::Strategy::kRecv;
  cfg.partition.ap_chunk = 8;
  // The network misbehaves constantly...
  cfg.net.faults.drop_probability = 0.03;
  cfg.net.faults.duplicate_probability = 0.01;
  cfg.net.faults.jitter_min = 0.001;
  cfg.net.faults.jitter_max = 0.02;
  // ...two nodes fall off the network for a minute mid-soak...
  cfg.net.faults.partitions.push_back(
      simnet::PartitionWindow{60.0, 120.0, {4, 5}});
  // ...and on top of that, nodes crash at random and reboot cold.
  cfg.faults.mtbf = 120.0;
  cfg.faults.restart_after = 45.0;
  // Generous budget: degradation is allowed, hanging is not.
  cfg.net.reliability.question_deadline = 240.0;
  cfg.cache.answers.max_entries = 64;
  cfg.cache.paragraphs.max_entries = 64;

  System system(sim, cfg);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    system.submit(plans()[i % plans().size()], at);
    at += 20.0;  // 30 questions over 10 simulated minutes
  }
  return system.run();
}

TEST(ChaosSoakTest, EveryQuestionCompletesOrDegradesNeverHangs) {
  const auto m = soak(chaos_seed());
  EXPECT_EQ(m.submitted, 30u);
  EXPECT_EQ(m.completed, 30u);
  EXPECT_EQ(m.latencies.count(), 30u);
  // Degraded answers are completions too; they are counted inside the 30,
  // never in addition to it.
  EXPECT_LE(m.questions_degraded, m.completed);
  // The chaos actually happened.
  EXPECT_GT(m.net_drops, 0u);
  EXPECT_GT(m.net_partition_drops, 0u);
  EXPECT_GT(m.net_retries, 0u);
  EXPECT_GT(m.crashes, 0u);
}

TEST(ChaosSoakTest, SameSeedReplaysBitIdentically) {
  const std::uint64_t seed = chaos_seed();
  const auto a = soak(seed);
  const auto b = soak(seed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.net_drops, b.net_drops);
  EXPECT_EQ(a.net_duplicates, b.net_duplicates);
  EXPECT_EQ(a.net_retries, b.net_retries);
  EXPECT_EQ(a.net_send_failures, b.net_send_failures);
  EXPECT_EQ(a.legs_unreachable, b.legs_unreachable);
  EXPECT_EQ(a.detector_suspicions, b.detector_suspicions);
  EXPECT_EQ(a.detector_deaths, b.detector_deaths);
  EXPECT_EQ(a.detector_rejoins, b.detector_rejoins);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
}

TEST(ChaosSoakTest, ShardedSoakCompletesOrDegradesNeverHangs) {
  const auto m = soak(chaos_seed(), /*sharded=*/true);
  EXPECT_EQ(m.submitted, 30u);
  EXPECT_EQ(m.completed, 30u);
  EXPECT_EQ(m.latencies.count(), 30u);
  EXPECT_LE(m.questions_degraded, m.completed);
  EXPECT_GT(m.crashes, 0u);
  // Shard bookkeeping stays self-consistent under chaos: completed
  // rebuilds never exceed the failovers that scheduled them, and every
  // completed rebuild copied exactly one shard artifact.
  EXPECT_LE(m.shard_rebuilds, m.shard_failovers);
  EXPECT_EQ(m.shard_rebuild_bytes, m.shard_rebuilds * 64_MB);
  EXPECT_EQ(m.shard_rebuild_seconds.count(), m.shard_rebuilds);
}

TEST(ChaosSoakTest, GraySoakCompletesOrDegradesNeverHangs) {
  // All of the above chaos plus three random gray-degradation windows and
  // the tail toolkit (hedging + tied cancellation + latency-aware
  // selection) reacting to them under fire.
  const auto m = soak(chaos_seed(), /*sharded=*/false, /*gray=*/true);
  EXPECT_EQ(m.submitted, 30u);
  EXPECT_EQ(m.completed, 30u);
  EXPECT_EQ(m.latencies.count(), 30u);
  EXPECT_LE(m.questions_degraded, m.completed);
  EXPECT_EQ(m.gray_onsets, 3u);
  // Hedge accounting stays consistent even with crashes and partitions
  // racing the hedges: settled races never exceed issued backups.
  EXPECT_LE(m.hedge_wins + m.hedge_losses, m.hedges_issued);
}

TEST(ChaosSoakTest, GraySoakReplaysBitIdentically) {
  const std::uint64_t seed = chaos_seed();
  const auto a = soak(seed, /*sharded=*/false, /*gray=*/true);
  const auto b = soak(seed, /*sharded=*/false, /*gray=*/true);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.gray_onsets, b.gray_onsets);
  EXPECT_EQ(a.gray_recoveries, b.gray_recoveries);
  EXPECT_EQ(a.hedges_issued, b.hedges_issued);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedge_losses, b.hedge_losses);
  EXPECT_EQ(a.legs_cancelled, b.legs_cancelled);
  EXPECT_EQ(a.straggler_avoidances, b.straggler_avoidances);
  EXPECT_EQ(a.detector_hints_suppressed, b.detector_hints_suppressed);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
}

TEST(ChaosSoakTest, ShardedSoakReplaysBitIdentically) {
  const std::uint64_t seed = chaos_seed();
  const auto a = soak(seed, /*sharded=*/true);
  const auto b = soak(seed, /*sharded=*/true);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.shard_failovers, b.shard_failovers);
  EXPECT_EQ(a.shard_rebuilds, b.shard_rebuilds);
  EXPECT_EQ(a.shard_revalidations, b.shard_revalidations);
  EXPECT_EQ(a.shard_units_unserved, b.shard_units_unserved);
  EXPECT_EQ(a.questions_degraded, b.questions_degraded);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
}

}  // namespace
}  // namespace qadist::cluster
