// Heterogeneous clusters (extension): nodes with different CPU speeds.
// The load balancer sees slow nodes' backlogs through the broadcasts and
// routes work toward the fast nodes.

#include <gtest/gtest.h>

#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

const std::vector<QuestionPlan>& het_plans() {
  static const std::vector<QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<QuestionPlan> out;
    for (std::size_t i = 0; i < 24; ++i) {
      out.push_back(make_plan(*world.engine, cost, world.questions[i]));
    }
    apply_bimodal_mix(out);
    return out;
  }();
  return p;
}

SystemConfig het_config(Policy policy) {
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.dispatch.policy = policy;
  cfg.partition.ap_chunk = 8;
  cfg.node_cpu_speeds = {2.0, 2.0, 0.5, 0.5};  // two fast, two slow
  return cfg;
}

TEST(HeterogeneousTest, SpeedArityIsChecked) {
  simnet::Simulation sim;
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.node_cpu_speeds = {1.0, 1.0};  // wrong arity
  EXPECT_DEATH({ System system(sim, cfg); }, "arity mismatch");
}

TEST(HeterogeneousTest, FastNodeFinishesQuestionFaster) {
  // Same question on a 1-node cluster at speed 1 vs speed 2: the CPU part
  // halves, the disk part does not.
  const auto latency = [&](double speed) {
    simnet::Simulation sim;
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.partition.ap_chunk = 8;
    cfg.node.cpu_speed = speed;
    System system(sim, cfg);
    system.submit(het_plans()[1], 0.0);
    return system.run().latencies.mean();
  };
  const double slow = latency(1.0);
  const double fast = latency(2.0);
  EXPECT_LT(fast, slow);
  EXPECT_GT(fast, slow / 2.0);  // the disk part does not speed up
}

TEST(HeterogeneousTest, LoadBalancerRoutesWorkToFastNodes) {
  simnet::Simulation sim;
  System system(sim, het_config(Policy::kDqa));
  OverloadWorkload workload;
  workload.seed = 11;
  submit_overload(system, het_plans(), workload);
  const auto m = system.run();
  EXPECT_EQ(m.completed, 32u);
  // Fast nodes (0,1) must serve more CPU-seconds than slow nodes (2,3).
  const double fast = m.node_cpu_work[0] + m.node_cpu_work[1];
  const double slow = m.node_cpu_work[2] + m.node_cpu_work[3];
  EXPECT_GT(fast, 1.3 * slow);
}

TEST(HeterogeneousTest, DqaBeatsDnsByMoreOnHeterogeneousCluster) {
  // Round-robin ignores speeds entirely; DQA's load feedback compensates.
  const auto run = [&](Policy policy, bool heterogeneous) {
    simnet::Simulation sim;
    auto cfg = het_config(policy);
    if (!heterogeneous) cfg.node_cpu_speeds = {1.25, 1.25, 1.25, 1.25};
    System system(sim, cfg);
    OverloadWorkload workload;
    workload.seed = 11;
    submit_overload(system, het_plans(), workload);
    return system.run().latencies.mean();
  };
  const double gain_homogeneous =
      run(Policy::kDns, false) / run(Policy::kDqa, false);
  const double gain_heterogeneous =
      run(Policy::kDns, true) / run(Policy::kDqa, true);
  EXPECT_GT(gain_heterogeneous, gain_homogeneous);
}

}  // namespace
}  // namespace qadist::cluster
