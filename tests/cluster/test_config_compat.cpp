#include "cluster/config_compat.hpp"

#include <gtest/gtest.h>

namespace qadist::cluster {
namespace {

// The alias is deprecated on purpose; these tests are its one sanctioned
// in-tree user.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ConfigCompatTest, DefaultFlatConfigMatchesDefaultNestedConfig) {
  const SystemConfig nested;
  const SystemConfig converted = FlatSystemConfig{};
  EXPECT_EQ(converted.nodes, nested.nodes);
  EXPECT_EQ(converted.seed, nested.seed);
  EXPECT_DOUBLE_EQ(converted.net.bandwidth.bytes_per_second,
                   nested.net.bandwidth.bytes_per_second);
  EXPECT_DOUBLE_EQ(converted.net.monitor_period, nested.net.monitor_period);
  EXPECT_DOUBLE_EQ(converted.net.membership_timeout,
                   nested.net.membership_timeout);
  EXPECT_EQ(converted.net.load_packet_bytes, nested.net.load_packet_bytes);
  EXPECT_DOUBLE_EQ(converted.net.per_message_overhead,
                   nested.net.per_message_overhead);
  EXPECT_DOUBLE_EQ(converted.net.load_smoothing_tau,
                   nested.net.load_smoothing_tau);
  EXPECT_EQ(converted.dispatch.policy, nested.dispatch.policy);
  EXPECT_DOUBLE_EQ(converted.dispatch.pr_underload_threshold,
                   nested.dispatch.pr_underload_threshold);
  EXPECT_DOUBLE_EQ(converted.dispatch.ap_underload_threshold,
                   nested.dispatch.ap_underload_threshold);
  EXPECT_EQ(converted.partition.enable, nested.partition.enable);
  EXPECT_EQ(converted.partition.pr_strategy, nested.partition.pr_strategy);
  EXPECT_EQ(converted.partition.pr_chunk, nested.partition.pr_chunk);
  EXPECT_EQ(converted.partition.ap_strategy, nested.partition.ap_strategy);
  EXPECT_EQ(converted.partition.ap_chunk, nested.partition.ap_chunk);
  EXPECT_DOUBLE_EQ(converted.partition.per_batch_answer_cpu,
                   nested.partition.per_batch_answer_cpu);
  // Fields the flat layout never had keep the nested defaults.
  EXPECT_EQ(converted.cache.answers.max_entries,
            nested.cache.answers.max_entries);
  EXPECT_EQ(converted.dispatch.cache_affinity, nested.dispatch.cache_affinity);
}

TEST(ConfigCompatTest, FlatFieldsLandInTheirNestedHomes) {
  FlatSystemConfig flat;
  flat.nodes = 6;
  flat.seed = 99;
  flat.policy = Policy::kInter;
  flat.network = Bandwidth::from_mbps(10);
  flat.membership_timeout = 7.5;
  flat.monitor_period = 0.25;
  flat.load_packet_bytes = 128;
  flat.per_message_overhead = 5e-3;
  flat.load_smoothing_tau = 12.0;
  flat.enable_partitioning = false;
  flat.pr_underload_threshold = 1.5;
  flat.ap_underload_threshold = 2.5;
  flat.pr_strategy = parallel::Strategy::kSend;
  flat.pr_chunk = 3;
  flat.ap_strategy = parallel::Strategy::kIsend;
  flat.ap_chunk = 17;
  flat.per_batch_answer_cpu = 0.2;
  flat.node_cpu_speeds = {1.0, 2.0};
  flat.faults.crashes.push_back(FaultEvent{1, 4.0});

  const SystemConfig cfg = flat;  // the implicit conversion under test
  EXPECT_EQ(cfg.nodes, 6u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.dispatch.policy, Policy::kInter);
  EXPECT_DOUBLE_EQ(cfg.net.bandwidth.bytes_per_second,
                   Bandwidth::from_mbps(10).bytes_per_second);
  EXPECT_DOUBLE_EQ(cfg.net.membership_timeout, 7.5);
  EXPECT_DOUBLE_EQ(cfg.net.monitor_period, 0.25);
  EXPECT_EQ(cfg.net.load_packet_bytes, 128u);
  EXPECT_DOUBLE_EQ(cfg.net.per_message_overhead, 5e-3);
  EXPECT_DOUBLE_EQ(cfg.net.load_smoothing_tau, 12.0);
  EXPECT_FALSE(cfg.partition.enable);
  EXPECT_DOUBLE_EQ(cfg.dispatch.pr_underload_threshold, 1.5);
  EXPECT_DOUBLE_EQ(cfg.dispatch.ap_underload_threshold, 2.5);
  EXPECT_EQ(cfg.partition.pr_strategy, parallel::Strategy::kSend);
  EXPECT_EQ(cfg.partition.pr_chunk, 3u);
  EXPECT_EQ(cfg.partition.ap_strategy, parallel::Strategy::kIsend);
  EXPECT_EQ(cfg.partition.ap_chunk, 17u);
  EXPECT_DOUBLE_EQ(cfg.partition.per_batch_answer_cpu, 0.2);
  EXPECT_EQ(cfg.node_cpu_speeds, (std::vector<double>{1.0, 2.0}));
  ASSERT_EQ(cfg.faults.crashes.size(), 1u);
  EXPECT_EQ(cfg.faults.crashes[0].node, 1u);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace qadist::cluster
