#include "cluster/system.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

/// Shared plans: building them runs the real pipeline, so do it once.
struct ClusterFixture {
  CostModel cost;
  std::vector<QuestionPlan> plans;

  ClusterFixture()
      : cost(CostModel::calibrate(
            *test_world().engine,
            std::span<const corpus::Question>(test_world().questions)
                .subspan(0, 16))) {
    const auto& world = test_world();
    // The full question set: a rich plan pool gives the load balancers the
    // service-time variance that real workloads have. Every other plan is
    // scaled to TREC-8 weight, mirroring the paper's mixed TREC-8/TREC-9
    // high-load workload (48 s vs 94 s average service).
    for (const auto& question : world.questions) {
      plans.push_back(make_plan(*world.engine, cost, question));
    }
    for (std::size_t i = 0; i < plans.size(); i += 2) {
      scale_plan(plans[i], 48.0 / 94.0);
    }
  }
};

const ClusterFixture& fixture() {
  static const ClusterFixture f;
  return f;
}

SystemConfig base_config(std::size_t nodes, Policy policy) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.dispatch.policy = policy;
  return cfg;
}

/// High-load run per the paper's Sec. 6.1 protocol: 8·N questions arriving
/// at twice the system's aggregate service rate (the paper's "twice the
/// number of questions that will generate an overload state"), with the
/// same arrival sequence across policies. Mean sequential service is
/// ~158 s (Table 8), so gaps are uniform in [0, 158/N].
Metrics run_high_load(Policy policy, std::size_t nodes,
                      std::uint64_t seed = 2024) {
  const auto& f = fixture();
  simnet::Simulation sim;
  auto cfg = base_config(nodes, policy);
  // RECV chunk scaled to this corpus' ~60 accepted paragraphs (the paper's
  // optimum of 40 corresponds to ~880 accepted paragraphs).
  cfg.partition.ap_chunk = 8;
  System system(sim, cfg);
  const std::size_t questions = 8 * nodes;
  Rng arrivals(seed);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < questions; ++i) {
    system.submit(f.plans[(i * 7 + seed * 13) % f.plans.size()], at);
    at += arrivals.uniform(0.0, 158.0 / static_cast<double>(nodes));
  }
  return system.run();
}

TEST(SystemTest, SingleQuestionSingleNodeMatchesSequentialTime) {
  const auto& f = fixture();
  simnet::Simulation sim;
  System system(sim, base_config(1, Policy::kDns));
  system.submit(f.plans[0], 0.0);
  const auto metrics = system.run();
  ASSERT_EQ(metrics.completed, 1u);
  const double expected =
      f.plans[0].total_cpu_seconds() +
      f.plans[0].total_disk_bytes() /
          base_config(1, Policy::kDns).node.disk.bytes_per_second;
  EXPECT_NEAR(metrics.latencies.mean(), expected, expected * 0.05);
}

TEST(SystemTest, LowLoadPartitioningSpeedsUpQuestions) {
  const auto& f = fixture();
  // One question at a time on 1 vs 4 nodes (paper Sec. 6.2 protocol).
  const auto run_serial = [&](std::size_t nodes) {
    simnet::Simulation sim;
    auto cfg = base_config(nodes, Policy::kDqa);
    // The test corpus accepts ~60 paragraphs per question (the paper's
    // collection accepted ~880); scale the RECV chunk down accordingly.
    cfg.partition.ap_chunk = 4;
    System system(sim, cfg);
    Seconds at = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      system.submit(f.plans[i], at);
      at += 400.0;  // far apart: system fully drains between questions
    }
    return system.run();
  };
  const auto one = run_serial(1);
  const auto four = run_serial(4);
  const double speedup = one.latencies.mean() / four.latencies.mean();
  // Paper Table 10: measured 3.67 on 4 processors. Accept a broad band —
  // the workload differs — but demand real speedup.
  EXPECT_GT(speedup, 2.0) << "1-node " << one.latencies.mean() << "s, 4-node "
                          << four.latencies.mean() << "s";
  EXPECT_LE(speedup, 4.0 + 0.1);
}

TEST(SystemTest, HighLoadPolicyOrderingOnThroughput) {
  // Paper Tables 5-6 ordering: DQA > INTER > DNS on throughput and the
  // reverse on latency. Individual runs are makespan-noisy, so average a
  // few seeds (the benches use more).
  double tput[3] = {0, 0, 0};
  double lat[3] = {0, 0, 0};
  const Policy policies[3] = {Policy::kDns, Policy::kInter, Policy::kDqa};
  const int seeds = 6;
  for (int s = 0; s < seeds; ++s) {
    for (int p = 0; p < 3; ++p) {
      const auto m = run_high_load(policies[p], 8, 1000 + s);
      tput[p] += m.throughput_qpm();
      lat[p] += m.latencies.mean();
    }
  }
  EXPECT_GT(tput[1], tput[0]) << "INTER vs DNS throughput";
  EXPECT_GT(tput[2], tput[1]) << "DQA vs INTER throughput";
  EXPECT_LT(lat[1], lat[0]) << "INTER vs DNS latency";
  EXPECT_LT(lat[2], lat[1]) << "DQA vs INTER latency";
}

TEST(SystemTest, MigrationCountsFollowPolicy) {
  const auto dns = run_high_load(Policy::kDns, 4);
  EXPECT_EQ(dns.migrations_qa, 0u);
  EXPECT_EQ(dns.migrations_pr, 0u);
  EXPECT_EQ(dns.migrations_ap, 0u);

  const auto inter = run_high_load(Policy::kInter, 4);
  EXPECT_GT(inter.migrations_qa, 0u);
  EXPECT_EQ(inter.migrations_pr, 0u);
  EXPECT_EQ(inter.migrations_ap, 0u);

  const auto dqa = run_high_load(Policy::kDqa, 4);
  // The embedded dispatchers must be active (paper Table 7's point). Note
  // no expectation on dqa.migrations_qa: with the 2x anti-ping-pong
  // migration threshold, DQA's embedded dispatchers keep the inter-node
  // gap below one round-trip question-load, so whole-question migrations
  // can legitimately drop to zero.
  EXPECT_GT(dqa.migrations_pr + dqa.migrations_ap, 0u);
}

TEST(SystemTest, DeterministicAcrossRuns) {
  const auto a = run_high_load(Policy::kDqa, 4);
  const auto b = run_high_load(Policy::kDqa, 4);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.migrations_qa, b.migrations_qa);
  EXPECT_EQ(a.migrations_pr, b.migrations_pr);
  EXPECT_EQ(a.migrations_ap, b.migrations_ap);
}

TEST(SystemTest, AllQuestionsComplete) {
  const auto metrics = run_high_load(Policy::kDqa, 4);
  EXPECT_EQ(metrics.completed, 32u);
  EXPECT_EQ(metrics.latencies.count(), 32u);
  EXPECT_GT(metrics.makespan, 0.0);
}

TEST(SystemTest, OverheadIsSmallFractionAtLowLoad) {
  // Paper Table 9: the distribution overhead is < 3% of the response time.
  const auto& f = fixture();
  simnet::Simulation sim;
  System system(sim, base_config(4, Policy::kDqa));
  system.submit(f.plans[0], 0.0);
  const auto metrics = system.run();
  EXPECT_LT(metrics.overhead.total_mean(), 0.05 * metrics.latencies.mean());
}

TEST(SystemTest, TraceRecordsLifecycle) {
  const auto& f = fixture();
  simnet::Simulation sim;
  System system(sim, base_config(4, Policy::kDqa));
  TraceRecorder trace;
  system.set_trace(&trace);
  system.submit(f.plans[0], 0.0);
  (void)system.run();
  ASSERT_FALSE(trace.empty());
  const auto text = trace.render();
  EXPECT_NE(text.find("started question"), std::string::npos);
  EXPECT_NE(text.find("finished collection"), std::string::npos);
  EXPECT_NE(text.find("accepted"), std::string::npos);
  EXPECT_NE(text.find("answered question"), std::string::npos);
}

TEST(SystemTest, ModuleTimesRecorded) {
  const auto metrics = run_high_load(Policy::kDqa, 4);
  EXPECT_GT(metrics.t_qp.mean(), 0.0);
  EXPECT_GT(metrics.t_pr.mean(), 0.0);
  EXPECT_GT(metrics.t_ap.mean(), 0.0);
  // AP dominates (paper Table 2/8).
  EXPECT_GT(metrics.t_ap.mean(), metrics.t_pr.mean());
}

TEST(SystemTest, RecvChunkSizeAffectsOnlyOverheadNotCompletion) {
  const auto& f = fixture();
  for (std::size_t chunk : {5u, 40u, 100u}) {
    simnet::Simulation sim;
    auto cfg = base_config(4, Policy::kDqa);
    cfg.partition.ap_chunk = chunk;
    System system(sim, cfg);
    system.submit(f.plans[1], 0.0);
    const auto metrics = system.run();
    EXPECT_EQ(metrics.completed, 1u) << "chunk=" << chunk;
  }
}

}  // namespace
}  // namespace qadist::cluster
