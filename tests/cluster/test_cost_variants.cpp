// Cost-model calibration under anchor variants: scaling the paper's
// module-time anchors must scale the simulated demands proportionally —
// the property that makes the model portable to other reference hardware.

#include <gtest/gtest.h>

#include "cluster/cost_model.hpp"
#include "cluster/plan.hpp"
#include "support/test_world.hpp"

namespace qadist::cluster {
namespace {

using qadist::testing::test_world;

std::span<const corpus::Question> sample() {
  return std::span<const corpus::Question>(test_world().questions)
      .subspan(0, 12);
}

TEST(CostVariantsTest, DoublingApAnchorDoublesApDemand) {
  const auto& engine = *test_world().engine;
  CostAnchors base;
  CostAnchors heavy = base;
  heavy.t_ap_total *= 2.0;
  const auto m1 = CostModel::calibrate(engine, sample(), base);
  const auto m2 = CostModel::calibrate(engine, sample(), heavy);
  qa::AnswerWork work{1, 500, 10, 4};
  EXPECT_NEAR(m2.ap(work).cpu_seconds, 2.0 * m1.ap(work).cpu_seconds, 1e-9);
  // PR demands untouched.
  qa::RetrievalWork rw{100, 10, 5000};
  EXPECT_NEAR(m2.pr(rw).cpu_seconds, m1.pr(rw).cpu_seconds, 1e-12);
  EXPECT_NEAR(m2.pr(rw).disk_bytes, m1.pr(rw).disk_bytes, 1e-9);
}

TEST(CostVariantsTest, FasterReferenceDiskMeansMoreBytes) {
  // The same measured PR *time* at a faster reference disk implies a
  // larger I/O volume (time x bandwidth).
  const auto& engine = *test_world().engine;
  CostAnchors slow;
  slow.reference_disk = Bandwidth::from_mbps(100);
  CostAnchors fast;
  fast.reference_disk = Bandwidth::from_mbps(1000);
  const auto m_slow = CostModel::calibrate(engine, sample(), slow);
  const auto m_fast = CostModel::calibrate(engine, sample(), fast);
  qa::RetrievalWork rw{100, 10, 5000};
  EXPECT_NEAR(m_fast.pr(rw).disk_bytes, 10.0 * m_slow.pr(rw).disk_bytes,
              1e-6 * m_fast.pr(rw).disk_bytes);
  // And the simulated PR time at each model's own reference is identical.
  const double t_slow =
      m_slow.pr(rw).cpu_seconds +
      m_slow.pr(rw).disk_bytes / slow.reference_disk.bytes_per_second;
  const double t_fast =
      m_fast.pr(rw).cpu_seconds +
      m_fast.pr(rw).disk_bytes / fast.reference_disk.bytes_per_second;
  EXPECT_NEAR(t_slow, t_fast, 1e-9);
}

TEST(CostVariantsTest, PrDiskFractionRedistributesDemand) {
  const auto& engine = *test_world().engine;
  CostAnchors io_heavy;
  io_heavy.pr_disk_fraction = 0.95;
  CostAnchors cpu_heavy;
  cpu_heavy.pr_disk_fraction = 0.05;
  const auto m_io = CostModel::calibrate(engine, sample(), io_heavy);
  const auto m_cpu = CostModel::calibrate(engine, sample(), cpu_heavy);
  qa::RetrievalWork rw{100, 10, 5000};
  EXPECT_GT(m_io.pr(rw).disk_bytes, m_cpu.pr(rw).disk_bytes);
  EXPECT_LT(m_io.pr(rw).cpu_seconds, m_cpu.pr(rw).cpu_seconds);
}

TEST(CostVariantsTest, FlatModulesIgnoreAnchorsTheyDontOwn) {
  const auto& engine = *test_world().engine;
  CostAnchors anchors;
  anchors.t_qp = 2.5;
  anchors.t_po = 0.25;
  const auto m = CostModel::calibrate(engine, sample(), anchors);
  EXPECT_DOUBLE_EQ(m.qp().cpu_seconds, 2.5);
  EXPECT_DOUBLE_EQ(m.po().cpu_seconds, 0.25);
  EXPECT_DOUBLE_EQ(m.qp().disk_bytes, 0.0);
}

TEST(CostVariantsTest, PlanTotalsScaleWithAnchors) {
  const auto& world = test_world();
  CostAnchors base;
  CostAnchors doubled = base;
  doubled.t_pr_total *= 2.0;
  doubled.t_ps_total *= 2.0;
  doubled.t_ap_total *= 2.0;
  doubled.t_qp *= 2.0;
  doubled.t_po *= 2.0;
  const auto m1 = CostModel::calibrate(*world.engine, sample(), base);
  const auto m2 = CostModel::calibrate(*world.engine, sample(), doubled);
  const auto& q = world.questions.front();
  const auto p1 = make_plan(*world.engine, m1, q);
  const auto p2 = make_plan(*world.engine, m2, q);
  const double service1 =
      p1.total_cpu_seconds() +
      p1.total_disk_bytes() / base.reference_disk.bytes_per_second;
  const double service2 =
      p2.total_cpu_seconds() +
      p2.total_disk_bytes() / doubled.reference_disk.bytes_per_second;
  // answer_sort's fixed micro-cost is the only non-scaling term.
  EXPECT_NEAR(service2, 2.0 * service1, 0.01 * service2);
}

}  // namespace
}  // namespace qadist::cluster
