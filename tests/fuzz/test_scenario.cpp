// Scenario wire format: canonical JSON round-trips every field exactly
// (including full-64-bit seeds, which travel as decimal strings because
// JSON numbers are doubles), corrupt or truncated files die loudly
// (mirroring ir::persist), and problem() rejects everything the System
// or Driver would panic on.

#include "fuzz/scenario.hpp"

#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace qadist::fuzz {
namespace {

constexpr std::uint64_t kBigSeed = 0xDEADBEEFCAFEBABEULL;  // > 2^53

// A scenario exercising every field group, with awkward doubles and
// full-range seeds. Valid for a 10-plan set.
Scenario full_scenario() {
  Scenario s;
  s.name = "kitchen-sink";
  s.seed = kBigSeed;
  s.nodes = 6;
  s.traffic.shape = workload::ArrivalShape::kFlashCrowd;
  s.traffic.rate_qps = 0.1;
  s.traffic.count = 40;
  s.traffic.seed = (std::uint64_t{1} << 63) + 12345;
  s.traffic.flash_at = 10.5;
  s.traffic.flash_duration = 1.0 / 3.0;
  s.traffic.flash_multiplier = 8.0;
  s.traffic.repeat_exponent = 1.2;
  s.traffic.distinct_questions = 3;
  s.plan_offset = 1;
  s.plan_stride = 2;
  s.ap_chunk = 16;
  s.num_shards = 8;
  s.replication = 2;
  s.brokers = 3;
  s.selectivity = 0.5;
  s.top_k = 2;
  s.crashes.push_back({2, 33.5, 45.0});
  s.crashes.push_back({0, 10.0, -1.0});
  s.drop_probability = 0.05;
  s.duplicate_probability = 0.01;
  s.jitter_min = 0.001;
  s.jitter_max = 0.01;
  simnet::PartitionWindow window;
  window.from = 5.25;
  window.until = 17.75;
  window.isolated = {1, 3};
  s.partitions.push_back(window);
  simnet::GrayFaultEvent gray;
  gray.node = 4;
  gray.at = 20.0;
  gray.recover_after = 30.0;
  gray.cpu_factor = 4.5;
  gray.disk_factor = 2.25;
  gray.extra_latency = 0.015;
  s.gray.push_back(gray);
  s.max_concurrent = 12;
  s.queue_capacity = 8;
  s.admission_policy = cluster::AdmissionPolicy::kShedOldest;
  s.load_threshold = 2.5;
  s.hedge = true;
  s.tied = true;
  s.latency_aware = true;
  s.hedge_quantile = 0.9;
  s.answer_cache_entries = 128;
  s.paragraph_cache_entries = 32;
  s.cache_ttl = 600.0;
  s.question_deadline = 120.0;
  s.pin.present = true;
  s.pin.p99_seconds = 1234.5678901234567;
  s.pin.degraded_fraction = 0.25;
  s.pin.baseline_p99_seconds = 81.373;
  s.pin.slack = 0.25;
  return s;
}

TEST(ScenarioJsonTest, RoundTripsEveryFieldExactly) {
  const Scenario s = full_scenario();
  ASSERT_EQ(s.problem(10), std::nullopt);

  const Scenario r = scenario_from_json(to_json(s));
  EXPECT_EQ(r.name, s.name);
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_EQ(r.nodes, s.nodes);
  EXPECT_EQ(r.traffic.shape, s.traffic.shape);
  EXPECT_EQ(r.traffic.rate_qps, s.traffic.rate_qps);
  EXPECT_EQ(r.traffic.count, s.traffic.count);
  EXPECT_EQ(r.traffic.seed, s.traffic.seed);
  EXPECT_EQ(r.traffic.flash_duration, s.traffic.flash_duration);
  EXPECT_EQ(r.traffic.repeat_exponent, s.traffic.repeat_exponent);
  EXPECT_EQ(r.traffic.distinct_questions, s.traffic.distinct_questions);
  EXPECT_EQ(r.plan_offset, s.plan_offset);
  EXPECT_EQ(r.plan_stride, s.plan_stride);
  EXPECT_EQ(r.ap_chunk, s.ap_chunk);
  EXPECT_EQ(r.num_shards, s.num_shards);
  EXPECT_EQ(r.replication, s.replication);
  EXPECT_EQ(r.brokers, s.brokers);
  EXPECT_EQ(r.selectivity, s.selectivity);
  EXPECT_EQ(r.top_k, s.top_k);
  ASSERT_EQ(r.crashes.size(), 2u);
  EXPECT_EQ(r.crashes[0].node, 2u);
  EXPECT_EQ(r.crashes[0].at, 33.5);
  EXPECT_EQ(r.crashes[0].restart_after, 45.0);
  EXPECT_EQ(r.crashes[1].restart_after, -1.0);
  EXPECT_EQ(r.drop_probability, s.drop_probability);
  ASSERT_EQ(r.partitions.size(), 1u);
  EXPECT_EQ(r.partitions[0].from, 5.25);
  EXPECT_EQ(r.partitions[0].isolated, (std::vector<std::uint32_t>{1, 3}));
  ASSERT_EQ(r.gray.size(), 1u);
  EXPECT_EQ(r.gray[0].cpu_factor, 4.5);
  EXPECT_EQ(r.gray[0].extra_latency, 0.015);
  EXPECT_EQ(r.max_concurrent, s.max_concurrent);
  EXPECT_EQ(r.admission_policy, s.admission_policy);
  EXPECT_EQ(r.hedge, s.hedge);
  EXPECT_EQ(r.tied, s.tied);
  EXPECT_EQ(r.hedge_quantile, s.hedge_quantile);
  EXPECT_EQ(r.answer_cache_entries, s.answer_cache_entries);
  EXPECT_EQ(r.cache_ttl, s.cache_ttl);
  EXPECT_EQ(r.question_deadline, s.question_deadline);
  ASSERT_TRUE(r.pin.present);
  EXPECT_EQ(r.pin.p99_seconds, s.pin.p99_seconds);
  EXPECT_EQ(r.pin.slack, s.pin.slack);
}

TEST(ScenarioJsonTest, SerializationIsCanonical) {
  // serialize -> parse -> serialize is a fixed point: byte-for-byte equal.
  const std::string first = to_json(full_scenario());
  EXPECT_EQ(to_json(scenario_from_json(first)), first);
}

TEST(ScenarioJsonTest, SeedsTravelAsDecimalStrings) {
  // A full-range 64-bit seed cannot survive a JSON number (doubles carry
  // 2^53); the wire format quotes it.
  const std::string json = to_json(full_scenario());
  EXPECT_NE(json.find("\"seed\":\"16045690984503098046\""), std::string::npos);
  const Scenario r = scenario_from_json(json);
  EXPECT_EQ(r.seed, kBigSeed);
  EXPECT_EQ(r.traffic.seed, (std::uint64_t{1} << 63) + 12345);
}

TEST(ScenarioJsonTest, BrokerKnobsDefaultWhenAbsent) {
  // The broker fields postdate the original corpus: a pre-broker scenario
  // JSON must still parse, with the knobs at their off defaults.
  Scenario s = full_scenario();
  s.brokers = 0;
  s.selectivity = 1.0;
  s.top_k = 0;
  std::string json = to_json(s);
  const std::string fields = ",\"brokers\":0,\"selectivity\":1,\"top_k\":0";
  const auto at = json.find(fields);
  ASSERT_NE(at, std::string::npos);
  json.erase(at, fields.size());
  const Scenario r = scenario_from_json(json);
  EXPECT_EQ(r.brokers, 0u);
  EXPECT_EQ(r.selectivity, 1.0);
  EXPECT_EQ(r.top_k, 0u);
}

TEST(ScenarioJsonTest, PinIsOmittedWhenAbsent) {
  Scenario s = full_scenario();
  s.pin = Pin{};
  const std::string json = to_json(s);
  EXPECT_EQ(json.find("\"pin\""), std::string::npos);
  EXPECT_FALSE(scenario_from_json(json).pin.present);
}

TEST(ScenarioJsonTest, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 2.5e-9, 12345.678901234567, 1e300,
                         7.0, -0.125, 81.37299999999999}) {
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v)
        << "value " << v << " did not round-trip";
  }
}

// ---- corrupt / truncated / mistyped inputs die loudly (ir::persist
// idiom: a broken committed artifact is a build-stopping event).

TEST(ScenarioJsonDeathTest, RejectsEmptyInput) {
  EXPECT_DEATH((void)scenario_from_json(""), "malformed or truncated");
}

TEST(ScenarioJsonDeathTest, RejectsTruncatedInput) {
  const std::string json = to_json(full_scenario());
  EXPECT_DEATH((void)scenario_from_json(json.substr(0, json.size() / 2)),
               "malformed or truncated");
}

TEST(ScenarioJsonDeathTest, RejectsWrongSchemaTag) {
  EXPECT_DEATH((void)scenario_from_json(R"({"schema":"bogus-v9"})"),
               "schema mismatch");
}

TEST(ScenarioJsonDeathTest, RejectsMissingField) {
  EXPECT_DEATH((void)scenario_from_json(R"({"schema":"qadist-scenario-v1"})"),
               "missing field");
}

TEST(ScenarioJsonDeathTest, RejectsNumericSeed) {
  // Seeds must be strings on the wire; a bare number is a schema error.
  std::string json = to_json(full_scenario());
  const std::string quoted = "\"seed\":\"16045690984503098046\"";
  const auto at = json.find(quoted);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, quoted.size(), "\"seed\":16045690984503098046");
  EXPECT_DEATH((void)scenario_from_json(json), "must be a string");
}

TEST(ScenarioJsonDeathTest, RejectsNonDigitSeed) {
  EXPECT_DEATH(
      (void)scenario_from_json(
          R"({"schema":"qadist-scenario-v1","name":"x","seed":"12x4"})"),
      "decimal digit string");
}

TEST(ScenarioJsonDeathTest, RejectsOutOfRangeSeed) {
  EXPECT_DEATH((void)scenario_from_json(
                   R"({"schema":"qadist-scenario-v1","name":"x",)"
                   R"("seed":"99999999999999999999999"})"),
               "out of range");
}

// ---- problem(): at least as strict as the System + Driver checks.

TEST(ScenarioProblemTest, ReferenceScenarioIsValid) {
  const Scenario s = reference_scenario(12, 118.0);
  EXPECT_EQ(s.problem(100), std::nullopt);
  EXPECT_EQ(s.nodes, 12u);
  EXPECT_EQ(s.traffic.count, 96u);
  EXPECT_DOUBLE_EQ(s.traffic.rate_qps, 0.5 * 12.0 / 118.0);
}

TEST(ScenarioProblemTest, RejectsBadInputs) {
  const auto problem_of = [](auto&& tweak) {
    Scenario s = reference_scenario(8, 100.0);
    tweak(s);
    const auto issue = s.problem(50);
    return issue.value_or("(valid)");
  };
  EXPECT_NE(problem_of([](Scenario& s) { s.nodes = 1; }).find("nodes"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.traffic.rate_qps = std::numeric_limits<double>::quiet_NaN();
            }).find("rate_qps"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) { s.traffic.count = 0; })
                .find("traffic.count"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.crashes.push_back({99, 1.0, -1.0});
            }).find("unknown node"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.crashes.push_back({1, 1.0e9, -1.0});
            }).find("crash instant outside"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              simnet::GrayFaultEvent g;
              g.node = 0;
              g.at = 1.0;
              g.cpu_factor = 0.5;  // gray means slower, never faster
              s.gray.push_back(g);
            }).find("gray factors"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              simnet::PartitionWindow w;
              w.from = 1.0;
              w.until = 2.0;
              for (std::uint32_t n = 0; n < 8; ++n) w.isolated.push_back(n);
              s.partitions.push_back(w);
            }).find("at least one connected"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) { s.question_deadline = 5.0; })
                .find("question_deadline"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) { s.plan_offset = 50; })
                .find("selects no plans"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.num_shards = 8;
              s.replication = 2;
              s.brokers = 9;  // more brokers than nodes
            }).find("brokers"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.num_shards = 0;
              s.selectivity = 0.5;  // selection without a sharded corpus
            }).find("sharded corpus"),
            std::string::npos);
  EXPECT_NE(problem_of([](Scenario& s) {
              s.num_shards = 8;
              s.replication = 2;
              s.selectivity = 0.0;
            }).find("selectivity"),
            std::string::npos);
}

TEST(ScenarioProblemTest, PlanSubsetAppliesOffsetAndStride) {
  Scenario s;
  s.plan_offset = 1;
  s.plan_stride = 3;
  EXPECT_EQ(s.plan_subset(10), (std::vector<std::size_t>{1, 4, 7}));
  s.plan_offset = 0;
  s.plan_stride = 1;
  EXPECT_EQ(s.plan_subset(3), (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace qadist::fuzz
