// Delta-debugging shrinker, tested with pure predicates (no simulation):
// irrelevant fault events and knobs fall away, the predicate keeps
// holding on the result, and the attempt budget bounds the work.

#include "fuzz/shrink.hpp"

#include <gtest/gtest.h>

namespace qadist::fuzz {
namespace {

constexpr std::size_t kPlanCount = 100;

// A valid scenario carrying one essential crash (node 2) buried under
// irrelevant faults and non-default knobs.
Scenario noisy_scenario() {
  Scenario s = reference_scenario(8, 100.0);
  s.crashes.push_back({0, 60.0, -1.0});
  s.crashes.push_back({2, 50.0, -1.0});  // the one the predicate needs
  s.crashes.push_back({1, 70.0, 30.0});
  simnet::GrayFaultEvent gray;
  gray.node = 3;
  gray.at = 80.0;
  gray.recover_after = 40.0;
  gray.cpu_factor = 4.0;
  gray.disk_factor = 4.0;
  s.gray.push_back(gray);
  simnet::PartitionWindow window;
  window.from = 90.0;
  window.until = 120.0;
  window.isolated = {1};
  s.partitions.push_back(window);
  s.hedge = true;
  s.answer_cache_entries = 128;
  s.traffic.repeat_exponent = 1.2;
  s.traffic.distinct_questions = 5;
  s.question_deadline = 120.0;
  return s;
}

bool has_crash_on_node_2(const Scenario& s) {
  for (const cluster::FaultEvent& crash : s.crashes) {
    if (crash.node == 2) return true;
  }
  return false;
}

TEST(ShrinkTest, RemovesEverythingThePredicateDoesNotNeed) {
  const Scenario input = noisy_scenario();
  ASSERT_EQ(input.problem(kPlanCount), std::nullopt);
  ASSERT_TRUE(has_crash_on_node_2(input));

  const ShrinkResult result =
      shrink(input, kPlanCount, has_crash_on_node_2, 500);

  // The essential crash survives; the irrelevant faults do not.
  EXPECT_TRUE(has_crash_on_node_2(result.scenario));
  EXPECT_EQ(result.scenario.crashes.size(), 1u);
  EXPECT_TRUE(result.scenario.gray.empty());
  EXPECT_TRUE(result.scenario.partitions.empty());
  // Knobs reset to the reference defaults.
  EXPECT_FALSE(result.scenario.hedge);
  EXPECT_EQ(result.scenario.answer_cache_entries, 0u);
  EXPECT_EQ(result.scenario.traffic.repeat_exponent, 0.0);
  EXPECT_EQ(result.scenario.question_deadline, Scenario{}.question_deadline);
  // The stream halves while the predicate holds (it always does here).
  EXPECT_LT(result.scenario.traffic.count, input.traffic.count);
  // The result is still a valid, runnable scenario.
  EXPECT_EQ(result.scenario.problem(kPlanCount), std::nullopt);
  EXPECT_GE(result.accepted, 4u);
  EXPECT_LE(result.attempts, 500u);
}

TEST(ShrinkTest, KeepsEventsThePredicateDependsOn) {
  Scenario input = reference_scenario(8, 100.0);
  input.crashes.push_back({0, 10.0, -1.0});
  input.crashes.push_back({1, 20.0, -1.0});
  input.crashes.push_back({2, 30.0, -1.0});
  const Predicate needs_all_three = [](const Scenario& s) {
    return s.crashes.size() >= 3;
  };
  const ShrinkResult result =
      shrink(input, kPlanCount, needs_all_three, 200);
  EXPECT_EQ(result.scenario.crashes.size(), 3u);
}

TEST(ShrinkTest, AttemptBudgetBoundsPredicateCalls) {
  std::size_t calls = 0;
  const Predicate counting = [&calls](const Scenario&) {
    ++calls;
    return true;
  };
  const ShrinkResult result =
      shrink(noisy_scenario(), kPlanCount, counting, 3);
  EXPECT_LE(result.attempts, 3u);
  EXPECT_EQ(calls, result.attempts);
}

TEST(ShrinkDeathTest, RejectsAnInvalidInputScenario) {
  Scenario bad = reference_scenario(8, 100.0);
  bad.nodes = 1;
  EXPECT_DEATH(
      (void)shrink(bad, kPlanCount, [](const Scenario&) { return true; }),
      "input scenario is invalid");
}

}  // namespace
}  // namespace qadist::fuzz
