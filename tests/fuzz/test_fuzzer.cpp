// Corpus bookkeeping (coverage-keyed survivor pool, save/load round-trip)
// and the campaign loop itself: a tiny fixed-seed hunt on the test world
// is deterministic end to end and never trips an invariant.

#include "fuzz/fuzzer.hpp"

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/workload.hpp"
#include "common/rng.hpp"
#include "support/test_world.hpp"

namespace qadist::fuzz {
namespace {

using qadist::testing::test_world;

CorpusEntry entry(std::string name, double fitness, std::uint64_t coverage) {
  CorpusEntry e;
  e.scenario = reference_scenario(8, 100.0);
  e.scenario.name = std::move(name);
  e.fitness = fitness;
  e.coverage = coverage;
  return e;
}

TEST(CorpusTest, KeepsOnlyTheFittestPerCoverageSignature) {
  Corpus corpus;
  EXPECT_TRUE(corpus.offer(entry("a", 1.0, 5)));
  EXPECT_TRUE(corpus.offer(entry("b", 2.0, 5)));  // fitter, replaces a
  EXPECT_FALSE(corpus.offer(entry("c", 0.5, 5)));  // weaker, dropped
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.entries()[0].scenario.name, "b");
  EXPECT_TRUE(corpus.offer(entry("d", 0.1, 9)));  // novel signature
  EXPECT_EQ(corpus.size(), 2u);
}

TEST(CorpusTest, ParentPickingIsDeterministicAndInRange) {
  Corpus corpus;
  Rng empty_rng(1);
  EXPECT_EQ(corpus.pick_parent(empty_rng), std::nullopt);
  corpus.offer(entry("a", 1.0, 1));
  corpus.offer(entry("b", 10.0, 2));
  corpus.offer(entry("c", 0.0, 4));  // fitness floor keeps it drawable
  Rng rng_a(7);
  Rng rng_b(7);
  for (int draw = 0; draw < 50; ++draw) {
    const auto pick_a = corpus.pick_parent(rng_a);
    const auto pick_b = corpus.pick_parent(rng_b);
    ASSERT_TRUE(pick_a.has_value());
    EXPECT_LT(*pick_a, corpus.size());
    EXPECT_EQ(pick_a, pick_b);
  }
}

TEST(CorpusTest, SaveLoadRoundTripsScenarios) {
  Corpus corpus;
  corpus.offer(entry("alpha", 1.0, 1));
  corpus.offer(entry("beta", 2.0, 2));
  const std::string dir = ::testing::TempDir() + "qadist_corpus_roundtrip";
  std::filesystem::remove_all(dir);

  const std::vector<std::string> written = corpus.save(dir);
  EXPECT_EQ(written.size(), 2u);
  const std::vector<LoadedScenario> loaded = load_scenario_dir(dir);
  ASSERT_EQ(loaded.size(), 2u);
  // Sorted by filename, so alpha before beta.
  EXPECT_EQ(loaded[0].scenario.name, "alpha");
  EXPECT_EQ(loaded[1].scenario.name, "beta");
  EXPECT_EQ(to_json(loaded[0].scenario),
            to_json(corpus.entries()[0].scenario));
  std::filesystem::remove_all(dir);
}

TEST(CorpusTest, LoadingAMissingDirectoryIsEmptyNotFatal) {
  EXPECT_TRUE(load_scenario_dir("does/not/exist").empty());
}

// ---- campaign: real runs on the (cheap) test world.

const std::vector<cluster::QuestionPlan>& plans() {
  static const std::vector<cluster::QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = cluster::CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<cluster::QuestionPlan> out;
    for (std::size_t i = 0; i < 10; ++i) {
      out.push_back(
          cluster::make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

FuzzConfig tiny_config() {
  FuzzConfig config;
  config.runs = 4;
  config.seconds = 0.0;  // pure run-count mode: fully deterministic
  config.seed = 3;
  config.shrink = false;
  config.check_replay = false;
  config.mutation.min_nodes = 4;
  config.mutation.max_nodes = 6;
  config.mutation.max_count = 24;
  return config;
}

Scenario tiny_reference() {
  Scenario s = reference_scenario(4, 40.0);
  s.traffic.count = 12;
  return s;
}

TEST(FuzzerTest, TinyCampaignIsCleanAndDeterministic) {
  Fuzzer first(plans(), tiny_reference(), tiny_config());
  first.run();

  // The whole campaign ran its budget and tripped no invariant anywhere —
  // on any scenario, pathological or boring.
  EXPECT_EQ(first.stats().runs, 4u);
  EXPECT_TRUE(first.stats().violations.empty())
      << first.stats().violations.front();
  EXPECT_GT(first.baseline().p99, 0.0);
  EXPECT_FALSE(first.corpus().empty());

  // Same seed, same budget: the same campaign, byte for byte.
  Fuzzer second(plans(), tiny_reference(), tiny_config());
  second.run();
  ASSERT_EQ(second.corpus().size(), first.corpus().size());
  for (std::size_t i = 0; i < first.corpus().size(); ++i) {
    EXPECT_EQ(to_json(second.corpus().entries()[i].scenario),
              to_json(first.corpus().entries()[i].scenario));
    EXPECT_EQ(second.corpus().entries()[i].fitness,
              first.corpus().entries()[i].fitness);
  }
  ASSERT_EQ(second.survivors().size(), first.survivors().size());
  for (std::size_t i = 0; i < first.survivors().size(); ++i) {
    EXPECT_EQ(to_json(second.survivors()[i].scenario),
              to_json(first.survivors()[i].scenario));
  }
}

}  // namespace
}  // namespace qadist::fuzz
