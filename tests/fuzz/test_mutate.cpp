// Mutator: deterministic for a fixed seed (the property that makes a
// whole fuzz campaign replayable), and every child is valid by
// construction — whatever sequence of ops and repairs it went through.

#include "fuzz/mutate.hpp"

#include <string>

#include <gtest/gtest.h>

namespace qadist::fuzz {
namespace {

constexpr std::size_t kPlanCount = 50;

TEST(MutatorTest, SameSeedSameParentsSameChildren) {
  Mutator a(42);
  Mutator b(42);
  Scenario parent_a = reference_scenario(8, 100.0);
  Scenario parent_b = parent_a;
  for (int round = 0; round < 25; ++round) {
    const Scenario child_a = a.mutate(parent_a, kPlanCount);
    const Scenario child_b = b.mutate(parent_b, kPlanCount);
    ASSERT_EQ(to_json(child_a), to_json(child_b)) << "diverged at round "
                                                  << round;
    parent_a = child_a;
    parent_b = child_b;
  }
}

TEST(MutatorTest, DifferentSeedsExploreDifferently) {
  Mutator a(1);
  Mutator b(2);
  const Scenario parent = reference_scenario(8, 100.0);
  bool diverged = false;
  for (int round = 0; round < 10 && !diverged; ++round) {
    diverged = to_json(a.mutate(parent, kPlanCount)) !=
               to_json(b.mutate(parent, kPlanCount));
  }
  EXPECT_TRUE(diverged);
}

TEST(MutatorTest, EveryChildIsValid) {
  // Deep random walk: each child becomes the next parent, so repairs have
  // to hold up under accumulated mutations, not just one step from the
  // healthy reference.
  Mutator m(7);
  Scenario parent = reference_scenario(12, 118.0);
  for (int round = 0; round < 300; ++round) {
    const Scenario child = m.mutate(parent, kPlanCount);
    const auto issue = child.problem(kPlanCount);
    ASSERT_EQ(issue, std::nullopt)
        << "round " << round << " (ops: " << m.last_ops()
        << "): " << issue.value_or("");
    parent = child;
  }
}

TEST(MutatorTest, ExploresTheBrokerAxis) {
  // The broker preset op must actually fire and produce valid children:
  // a deep walk should visit tiered and selective configurations (the
  // EveryChildIsValid walk above already proves they never go invalid).
  Mutator m(13);
  Scenario parent = reference_scenario(12, 118.0);
  bool saw_tier = false;
  bool saw_selection = false;
  for (int round = 0; round < 300 && !(saw_tier && saw_selection); ++round) {
    const Scenario child = m.mutate(parent, kPlanCount);
    saw_tier = saw_tier || child.brokers > 0;
    saw_selection =
        saw_selection || child.selectivity < 1.0 || child.top_k > 0;
    parent = child;
  }
  EXPECT_TRUE(saw_tier);
  EXPECT_TRUE(saw_selection);
}

TEST(MutatorTest, ReportsTheOpsItApplied) {
  Mutator m(5);
  const Scenario parent = reference_scenario(8, 100.0);
  (void)m.mutate(parent, kPlanCount);
  EXPECT_FALSE(m.last_ops().empty());
}

TEST(MutatorTest, ChildrenStayInsideTheConfiguredBounds) {
  MutationConfig bounds;
  bounds.min_nodes = 4;
  bounds.max_nodes = 8;
  bounds.max_count = 64;
  bounds.max_events = 3;
  Mutator m(11, bounds);
  Scenario parent = reference_scenario(6, 100.0);
  for (int round = 0; round < 200; ++round) {
    const Scenario child = m.mutate(parent, kPlanCount);
    EXPECT_GE(child.nodes, bounds.min_nodes);
    EXPECT_LE(child.nodes, bounds.max_nodes);
    EXPECT_GE(child.traffic.count, bounds.min_count);
    EXPECT_LE(child.traffic.count, bounds.max_count);
    EXPECT_LE(child.crashes.size(), bounds.max_events);
    EXPECT_LE(child.gray.size(), bounds.max_events);
    EXPECT_LE(child.partitions.size(), bounds.max_events);
    parent = child;
  }
}

}  // namespace
}  // namespace qadist::fuzz
