// Runner invariants and scoring, tested pure: counter_violations over
// hand-built Metrics, coverage signatures, and the fitness / pathology
// functions — no simulation required.

#include "fuzz/runner.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qadist::fuzz {
namespace {

bool mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&needle](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

// A consistent finished run: 4 submitted, all completed, nothing else.
cluster::Metrics clean_metrics() {
  cluster::Metrics m;
  m.submitted = 4;
  m.completed = 4;
  for (const double latency : {1.0, 2.0, 3.0, 4.0}) m.latencies.add(latency);
  return m;
}

TEST(CounterViolationsTest, CleanRunHasNone) {
  EXPECT_TRUE(counter_violations(clean_metrics(), Scenario{}).empty());
}

TEST(CounterViolationsTest, CatchesDrainAccountingHoles) {
  cluster::Metrics m = clean_metrics();
  m.submitted = 5;  // one question vanished
  EXPECT_TRUE(mentions(counter_violations(m, Scenario{}),
                       "drain accounting broke"));
}

TEST(CounterViolationsTest, CatchesLatencySampleMismatch) {
  cluster::Metrics m = clean_metrics();
  m.latencies.add(9.0);  // 5 samples, 4 completions
  EXPECT_TRUE(mentions(counter_violations(m, Scenario{}), "latency samples"));
}

TEST(CounterViolationsTest, CatchesDegradedExceedingCompleted) {
  cluster::Metrics m = clean_metrics();
  m.questions_degraded = 5;
  EXPECT_TRUE(mentions(counter_violations(m, Scenario{}), "exceeds completed"));
}

TEST(CounterViolationsTest, CatchesUnfiredCrashSchedule) {
  Scenario s;
  s.crashes.push_back({1, 10.0, -1.0});
  // Metrics say no crash was ever applied or skipped.
  EXPECT_TRUE(mentions(counter_violations(clean_metrics(), s),
                       "crash accounting broke"));
  cluster::Metrics m = clean_metrics();
  m.crashes = 1;
  EXPECT_TRUE(counter_violations(m, s).empty());
}

TEST(CounterViolationsTest, CatchesGrayWindowMiscounts) {
  Scenario s;
  simnet::GrayFaultEvent recovering;
  recovering.node = 0;
  recovering.at = 5.0;
  recovering.recover_after = 10.0;
  s.gray.push_back(recovering);
  simnet::GrayFaultEvent permanent = recovering;
  permanent.recover_after = -1.0;
  s.gray.push_back(permanent);

  cluster::Metrics m = clean_metrics();
  m.gray_onsets = 2;
  m.gray_recoveries = 1;  // only the recovering window closes
  EXPECT_TRUE(counter_violations(m, s).empty());

  m.gray_recoveries = 2;  // the permanent window must never "recover"
  EXPECT_TRUE(mentions(counter_violations(m, s), "gray recoveries"));
  m.gray_recoveries = 1;
  m.gray_onsets = 1;
  EXPECT_TRUE(mentions(counter_violations(m, s), "gray onsets"));
}

TEST(CounterViolationsTest, CatchesHedgingWithoutHedgesEnabled) {
  cluster::Metrics m = clean_metrics();
  m.hedges_issued = 3;
  m.legs_spawned = 10;
  EXPECT_TRUE(mentions(counter_violations(m, Scenario{}),
                       "with hedging disabled"));
  Scenario hedged;
  hedged.hedge = true;
  EXPECT_TRUE(counter_violations(m, hedged).empty());
}

TEST(CounterViolationsTest, CatchesCancellationsWithoutTiedRequests) {
  Scenario s;
  s.hedge = true;
  cluster::Metrics m = clean_metrics();
  m.legs_spawned = 10;
  m.hedges_issued = 4;
  m.legs_cancelled = 2;
  EXPECT_TRUE(mentions(counter_violations(m, s),
                       "with tied requests disabled"));
  s.tied = true;
  EXPECT_TRUE(counter_violations(m, s).empty());
  // A settled race may cancel several loser legs, but never more than
  // were ever spawned.
  m.legs_cancelled = 11;
  EXPECT_TRUE(mentions(counter_violations(m, s), "exceed spawned legs"));
}

TEST(CounterViolationsTest, CatchesAdmissionCountersWithAdmissionOff) {
  cluster::Metrics m = clean_metrics();
  m.submitted = 5;
  m.questions_rejected = 1;  // drain accounting balances...
  EXPECT_TRUE(mentions(counter_violations(m, Scenario{}),
                       "with admission disabled"));  // ...but the knob is off
  Scenario admitted;
  admitted.max_concurrent = 2;
  EXPECT_TRUE(counter_violations(m, admitted).empty());
}

TEST(CoverageTest, EmptyMetricsHaveEmptySignature) {
  EXPECT_EQ(coverage_signature(cluster::Metrics{}), 0u);
  EXPECT_TRUE(coverage_names(0).empty());
}

TEST(CoverageTest, SignatureNamesTheSubsystemsThatFired) {
  cluster::Metrics m;
  m.crashes = 2;
  m.migrations_ap = 1;
  m.hedges_issued = 7;
  const std::uint64_t sig = coverage_signature(m);
  const std::vector<std::string> names = coverage_names(sig);
  EXPECT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "crashes") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "migrations") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "hedges_issued") !=
              names.end());
  // Counts don't matter, only which families fired.
  cluster::Metrics same;
  same.crashes = 99;
  same.migrations_qa = 3;
  same.hedges_issued = 1;
  EXPECT_EQ(coverage_signature(same), sig);
}

TEST(FitnessTest, MonotoneInTailLatencyAndDegradation) {
  const Baseline b{.p99 = 10.0, .max_latency = 20.0, .degraded_fraction = 0.0};
  Observation healthy;
  healthy.p99 = 10.0;
  healthy.max_latency = 20.0;
  Observation slow = healthy;
  slow.p99 = 30.0;
  EXPECT_GT(fitness(slow, b), fitness(healthy, b));
  Observation degraded = healthy;
  degraded.degraded_fraction = 0.3;
  EXPECT_GT(fitness(degraded, b), fitness(healthy, b));
  Observation shed = healthy;
  shed.shed_fraction = 0.3;
  EXPECT_GT(fitness(shed, b), fitness(healthy, b));
}

TEST(PathologicalTest, RequiresTheConfiguredRatioOrDegradedFloor) {
  const Baseline b{.p99 = 10.0, .max_latency = 20.0, .degraded_fraction = 0.0};
  Observation o;
  o.p99 = 29.0;
  EXPECT_FALSE(pathological(o, b, 3.0));
  o.p99 = 30.0;
  EXPECT_TRUE(pathological(o, b, 3.0));
  o.p99 = 10.0;
  o.degraded_fraction = 0.1;  // below the 15% absolute floor
  EXPECT_FALSE(pathological(o, b, 3.0));
  o.degraded_fraction = 0.2;
  EXPECT_TRUE(pathological(o, b, 3.0));
}

}  // namespace
}  // namespace qadist::fuzz
