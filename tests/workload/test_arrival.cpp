#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace qadist::workload {
namespace {

ArrivalProcessConfig base_config(ArrivalShape shape) {
  ArrivalProcessConfig c;
  c.shape = shape;
  c.rate_qps = 2.0;
  c.count = 4000;
  c.seed = 11;
  return c;
}

/// Long-run empirical rate of a stream: count / span of the times.
double empirical_rate(const std::vector<Seconds>& times) {
  return static_cast<double>(times.size()) / times.back();
}

TEST(ArrivalTest, StreamsAreDeterministicAndSeedSensitive) {
  for (const auto shape :
       {ArrivalShape::kPoisson, ArrivalShape::kMmpp, ArrivalShape::kDiurnal,
        ArrivalShape::kFlashCrowd}) {
    auto config = base_config(shape);
    config.count = 200;
    const auto a = arrival_times(config);
    const auto b = arrival_times(config);
    EXPECT_EQ(a, b) << to_string(shape);
    config.seed = 12;
    const auto c = arrival_times(config);
    EXPECT_NE(a, c) << to_string(shape);
  }
}

TEST(ArrivalTest, TimesAreAscendingAndPositive) {
  for (const auto shape :
       {ArrivalShape::kPoisson, ArrivalShape::kMmpp, ArrivalShape::kDiurnal,
        ArrivalShape::kFlashCrowd}) {
    auto config = base_config(shape);
    config.count = 500;
    const auto times = arrival_times(config);
    ASSERT_EQ(times.size(), 500u) << to_string(shape);
    EXPECT_GT(times.front(), 0.0);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()))
        << to_string(shape);
  }
}

TEST(ArrivalTest, PoissonHitsTheConfiguredRate) {
  const auto times = arrival_times(base_config(ArrivalShape::kPoisson));
  EXPECT_NEAR(empirical_rate(times), 2.0, 0.2);
}

TEST(ArrivalTest, MmppHoldsTheLongRunMeanDespiteBursts) {
  auto config = base_config(ArrivalShape::kMmpp);
  config.count = 20000;  // many burst/calm cycles
  const auto times = arrival_times(config);
  EXPECT_NEAR(empirical_rate(times), 2.0, 0.3);
}

TEST(ArrivalTest, DiurnalConcentratesArrivalsInTheHighHalfPeriod) {
  auto config = base_config(ArrivalShape::kDiurnal);
  config.diurnal_period = 100.0;
  config.diurnal_amplitude = 0.8;
  config.count = 5000;
  const auto times = arrival_times(config);
  // sin > 0 on [0, P/2) mod P: that half should carry most arrivals.
  std::size_t high = 0;
  for (const Seconds t : times) {
    const double phase = std::fmod(t, config.diurnal_period);
    if (phase < config.diurnal_period / 2.0) ++high;
  }
  EXPECT_GT(static_cast<double>(high) / static_cast<double>(times.size()),
            0.6);
}

TEST(ArrivalTest, FlashCrowdSpikesInsideItsWindow) {
  auto config = base_config(ArrivalShape::kFlashCrowd);
  config.rate_qps = 1.0;
  config.flash_at = 60.0;
  config.flash_duration = 30.0;
  config.flash_multiplier = 8.0;
  config.count = 2000;
  const auto times = arrival_times(config);
  std::size_t in_window = 0;
  std::size_t in_baseline = 0;  // same-length window before the flash
  for (const Seconds t : times) {
    if (t >= 60.0 && t < 90.0) ++in_window;
    if (t >= 20.0 && t < 50.0) ++in_baseline;
  }
  EXPECT_GT(in_window, 4u * std::max<std::size_t>(in_baseline, 1));
}

TEST(ArrivalTest, PeakToMeanMatchesTheShapes) {
  EXPECT_DOUBLE_EQ(peak_to_mean(base_config(ArrivalShape::kPoisson)), 1.0);
  auto diurnal = base_config(ArrivalShape::kDiurnal);
  diurnal.diurnal_amplitude = 0.5;
  EXPECT_DOUBLE_EQ(peak_to_mean(diurnal), 1.5);
  auto flash = base_config(ArrivalShape::kFlashCrowd);
  flash.flash_multiplier = 6.0;
  EXPECT_DOUBLE_EQ(peak_to_mean(flash), 6.0);
  auto mmpp = base_config(ArrivalShape::kMmpp);
  mmpp.burst_rate_multiplier = 4.0;
  mmpp.mean_burst_seconds = 10.0;
  mmpp.mean_calm_seconds = 30.0;
  const double f = 10.0 / 40.0;
  EXPECT_DOUBLE_EQ(peak_to_mean(mmpp), 4.0 / (1.0 - f + 4.0 * f));
}

TEST(ArrivalTest, BurstyShapesHaveOverdispersedInterarrivals) {
  EXPECT_DOUBLE_EQ(interarrival_cv2(base_config(ArrivalShape::kPoisson)),
                   1.0);
  EXPECT_GT(interarrival_cv2(base_config(ArrivalShape::kMmpp)), 1.1);
  EXPECT_GT(interarrival_cv2(base_config(ArrivalShape::kFlashCrowd)), 1.0);
}

TEST(ArrivalTest, StreamPicksStayInRangeAndHonorZipf) {
  auto config = base_config(ArrivalShape::kPoisson);
  config.count = 400;
  config.repeat_exponent = 1.0;
  config.distinct_questions = 5;
  const auto stream = arrival_stream(config, 30);
  ASSERT_EQ(stream.size(), 400u);
  std::set<std::size_t> distinct;
  for (const Arrival& a : stream) {
    EXPECT_LT(a.plan_index, 30u);
    distinct.insert(a.plan_index);
  }
  EXPECT_LE(distinct.size(), 5u);
  // Times are untouched by the pick configuration (decorrelated streams).
  auto plain = config;
  plain.repeat_exponent = 0.0;
  const auto plain_stream = arrival_stream(plain, 30);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream[i].at, plain_stream[i].at);
  }
}

}  // namespace
}  // namespace qadist::workload
