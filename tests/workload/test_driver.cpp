// workload::Driver — the unified run/driver API. The legacy free
// functions (cluster::submit_overload, cluster::submit_serial,
// submit_stream over arrival_stream) are wrappers over the Driver, so
// driving the same spec through either path must produce bit-identical
// runs: same pick sequence, same arrival instants, same metrics.

#include "workload/driver.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cluster/workload.hpp"
#include "support/test_world.hpp"

namespace qadist::workload {
namespace {

using qadist::testing::test_world;

const std::vector<cluster::QuestionPlan>& plans() {
  static const std::vector<cluster::QuestionPlan> p = [] {
    const auto& world = test_world();
    const auto cost = cluster::CostModel::calibrate(
        *world.engine,
        std::span<const corpus::Question>(world.questions).subspan(0, 8));
    std::vector<cluster::QuestionPlan> out;
    for (std::size_t i = 0; i < 10; ++i) {
      out.push_back(
          cluster::make_plan(*world.engine, cost, world.questions[i]));
    }
    return out;
  }();
  return p;
}

cluster::SystemConfig config() {
  cluster::SystemConfig cfg;
  cfg.nodes = 4;
  cfg.seed = 11;
  cfg.partition.ap_chunk = 8;
  return cfg;
}

void expect_identical(const cluster::Metrics& a, const cluster::Metrics& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.latencies.mean(), b.latencies.mean());
  EXPECT_DOUBLE_EQ(a.latencies.quantile(0.95), b.latencies.quantile(0.95));
  EXPECT_EQ(a.migrations_qa, b.migrations_qa);
  EXPECT_EQ(a.migrations_pr, b.migrations_pr);
  EXPECT_EQ(a.migrations_ap, b.migrations_ap);
}

TEST(DriverTest, OverloadShapeMatchesLegacyFreeFunction) {
  cluster::OverloadWorkload workload;
  workload.count = 16;
  workload.seed = 9;

  simnet::Simulation sim_legacy;
  cluster::System legacy(sim_legacy, config());
  cluster::submit_overload(legacy, plans(), workload);
  const cluster::Metrics via_legacy = legacy.run();

  simnet::Simulation sim_driver;
  cluster::System driven(sim_driver, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOverload;
  spec.overload = workload;
  const RunResult result = Driver(driven, plans()).run(spec);

  EXPECT_EQ(result.submitted, 16u);
  expect_identical(result.metrics, via_legacy);
}

TEST(DriverTest, SerialShapeMatchesLegacyFreeFunction) {
  cluster::SerialWorkload workload;
  workload.count = 6;
  workload.offset = 1;
  workload.stride = 2;

  simnet::Simulation sim_legacy;
  cluster::System legacy(sim_legacy, config());
  cluster::submit_serial(legacy, plans(), workload);
  const cluster::Metrics via_legacy = legacy.run();

  simnet::Simulation sim_driver;
  cluster::System driven(sim_driver, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kSerial;
  spec.serial = workload;
  const RunResult result = Driver(driven, plans()).run(spec);

  EXPECT_EQ(result.submitted, 6u);
  expect_identical(result.metrics, via_legacy);
}

TEST(DriverTest, OpenLoopShapeMatchesArrivalStreamSubmit) {
  ArrivalProcessConfig arrivals;
  arrivals.shape = ArrivalShape::kPoisson;
  arrivals.rate_qps = 0.05;
  arrivals.count = 12;
  arrivals.seed = 21;

  simnet::Simulation sim_legacy;
  cluster::System legacy(sim_legacy, config());
  const auto stream = arrival_stream(arrivals, plans().size());
  submit_stream(legacy, plans(), stream);
  const cluster::Metrics via_legacy = legacy.run();

  simnet::Simulation sim_driver;
  cluster::System driven(sim_driver, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop = arrivals;
  const RunResult result = Driver(driven, plans()).run(spec);

  EXPECT_EQ(result.submitted, stream.size());
  expect_identical(result.metrics, via_legacy);
}

TEST(DriverTest, SubmitAloneLeavesRunToTheCaller) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOverload;
  spec.overload.count = 8;
  const std::size_t submitted = Driver(system, plans()).submit(spec);
  EXPECT_EQ(submitted, 8u);
  const cluster::Metrics m = system.run();
  EXPECT_EQ(m.completed, 8u);
}

TEST(DriverTest, ShapeNamesRoundTrip) {
  EXPECT_EQ(to_string(WorkloadShape::kOverload), "overload");
  EXPECT_EQ(to_string(WorkloadShape::kSerial), "serial");
  EXPECT_EQ(to_string(WorkloadShape::kOpenLoop), "open-loop");
}

// ---- RunSpec validation: malformed workloads must fail loudly at submit
// time, not produce an empty or meaningless run.

TEST(DriverDeathTest, RejectsZeroLengthSerialRun) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kSerial;
  spec.serial.count = 0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec), "count must be >= 1");
}

TEST(DriverDeathTest, RejectsZeroLengthOpenLoopRun) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.rate_qps = 1.0;
  spec.open_loop.count = 0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec), "count must be >= 1");
}

TEST(DriverDeathTest, RejectsNonFiniteOpenLoopRate) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "rate_qps must be finite and positive");
}

TEST(DriverDeathTest, RejectsNegativeOpenLoopRate) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = -0.5;
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "rate_qps must be finite and positive");
}

TEST(DriverDeathTest, RejectsNonFiniteOverloadFactor) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOverload;
  spec.overload.count = 4;
  spec.overload.overload_factor = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "overload_factor must be finite and positive");
}

TEST(DriverDeathTest, RejectsNegativeRepeatExponent) {
  simnet::Simulation sim;
  cluster::System system(sim, config());
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = 1.0;
  spec.open_loop.repeat_exponent = -1.0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "repeat_exponent must be finite");
}

// ---- Fault-horizon validation: a scripted fault that can only fire after
// the stream (plus drain allowance) has ended silently never happens —
// the Driver treats it as a configuration error.

TEST(DriverDeathTest, RejectsCrashScheduledPastTheRunHorizon) {
  cluster::SystemConfig cfg = config();
  cfg.faults.crashes.push_back({1, 1.0e7, -1.0});
  simnet::Simulation sim;
  cluster::System system(sim, cfg);
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = 1.0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "starts after the stream horizon");
}

TEST(DriverDeathTest, RejectsGrayWindowScheduledPastTheRunHorizon) {
  cluster::SystemConfig cfg = config();
  simnet::GrayFaultEvent event;
  event.node = 0;
  event.at = 1.0e7;
  event.cpu_factor = 4.0;
  cfg.gray.events.push_back(event);
  simnet::Simulation sim;
  cluster::System system(sim, cfg);
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = 1.0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "starts after the stream horizon");
}

TEST(DriverDeathTest, RejectsPartitionScheduledPastTheRunHorizon) {
  cluster::SystemConfig cfg = config();
  simnet::PartitionWindow window;
  window.from = 1.0e7;
  window.until = 1.0e7 + 60.0;
  window.isolated = {0};
  cfg.net.faults.partitions.push_back(window);
  simnet::Simulation sim;
  cluster::System system(sim, cfg);
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = 1.0;
  EXPECT_DEATH(Driver(system, plans()).submit(spec),
               "starts after the stream horizon");
}

TEST(DriverTest, AcceptsFaultsInsideTheDrainAllowance) {
  // A crash shortly after the last arrival is still meaningful: questions
  // drain for a while. drain_allowance() sets the grace window.
  cluster::SystemConfig cfg = config();
  cfg.faults.crashes.push_back({1, 30.0, -1.0});
  simnet::Simulation sim;
  cluster::System system(sim, cfg);
  RunSpec spec;
  spec.shape = WorkloadShape::kOpenLoop;
  spec.open_loop.count = 4;
  spec.open_loop.rate_qps = 1.0;
  EXPECT_GT(Driver(system, plans()).submit(spec), 0u);
}

TEST(DriverTest, DrainAllowanceScalesWithTheStream) {
  EXPECT_DOUBLE_EQ(Driver::drain_allowance(10.0), 60.0);
  EXPECT_DOUBLE_EQ(Driver::drain_allowance(600.0), 600.0);
}

}  // namespace
}  // namespace qadist::workload
