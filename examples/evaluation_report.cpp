// TREC-style evaluation of the Q/A pipeline: generates a world, answers
// its question set, and prints the accuracy/MRR report (the qualitative
// side FALCON was ranked first on: 66.4% short / 86.1% long correct in
// TREC-9), broken down by answer type.

#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "qa/evaluation.hpp"

int main() {
  using namespace qadist;

  corpus::CorpusConfig cc;
  cc.seed = 404;
  cc.num_documents = 800;
  const auto world = corpus::generate_corpus(cc);
  const qa::Engine engine(world);
  const auto questions = corpus::generate_questions(world, 150, /*seed=*/6);

  // Overall metrics.
  const auto overall = qa::evaluate(engine, questions);
  std::printf(
      "overall: %zu questions, %zu answered, accuracy@1 %.1f%%, accuracy@%zu "
      "%.1f%%, MRR %.3f\n\n",
      overall.questions, overall.answered, 100.0 * overall.accuracy_at_1(),
      engine.answer_processor().config().answers_requested,
      100.0 * overall.accuracy_at_k(), overall.mrr);

  // Per-answer-type breakdown.
  std::map<corpus::EntityType, std::vector<corpus::Question>> by_type;
  for (const auto& q : questions) by_type[q.gold_type].push_back(q);

  TextTable table({"Answer type", "Questions", "Accuracy@1", "Accuracy@k",
                   "MRR"});
  for (const auto& [type, subset] : by_type) {
    const auto r = qa::evaluate(
        engine, std::span<const corpus::Question>(subset));
    table.add_row({std::string(corpus::to_string(type)),
                   std::to_string(r.questions),
                   cell_percent(r.accuracy_at_1()),
                   cell_percent(r.accuracy_at_k()), cell(r.mrr, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "Reference bar: FALCON answered 66.4%% (short) / 86.1%% (long) of "
      "TREC-9 questions; a closed synthetic world should sit above that.\n");
  return 0;
}
