// Quickstart: build a synthetic world, index it, and answer questions with
// the sequential Q/A engine — the paper's Table 1 experience in ~40 lines
// of API use.
//
//   $ ./quickstart
//   Q: Where is the Brelor Lighthouse ?
//   A: Port Varen   (score 0.61)  ... the Brelor Lighthouse is located in
//      Port Varen ...

#include <cstdio>

#include "corpus/generator.hpp"
#include "qa/engine.hpp"

int main() {
  using namespace qadist;

  // 1. Generate a document collection with known facts in it. In a real
  //    deployment you would load your own corpus::Collection instead.
  corpus::CorpusConfig config;
  config.seed = 2001;
  config.num_documents = 600;
  const auto world = corpus::generate_corpus(config);
  std::printf("corpus: %zu documents, %zu paragraphs, %zu facts\n",
              world.collection.size(), world.collection.total_paragraphs(),
              world.facts.size());

  // 2. Build the Q/A engine: splits the collection into 8 sub-collections
  //    and indexes each (paper Fig. 1 pipeline).
  const qa::Engine engine(world);

  // 3. Ask questions derived from the corpus' facts (so we can show the
  //    gold answers alongside).
  const auto questions = corpus::generate_questions(world, 6, /*seed=*/5);
  for (const auto& q : questions) {
    const auto result = engine.answer(q);
    std::printf("\nQ%-3u %s\n", q.id, q.text.c_str());
    std::printf("     expected type %s, gold answer: %s\n",
                std::string(corpus::to_string(q.gold_type)).c_str(),
                q.gold_answer.c_str());
    if (result.answers.empty()) {
      std::printf("     (no answer found)\n");
      continue;
    }
    for (std::size_t i = 0; i < result.answers.size() && i < 2; ++i) {
      const auto& a = result.answers[i];
      std::printf("  %zu. %-28s score %.3f\n     ... %s ...\n", i + 1,
                  a.candidate.c_str(), a.score, a.window.c_str());
    }
    std::printf(
        "     [qp %.1f ms | pr %.1f ms | ps %.1f ms | po %.1f ms | ap %.1f "
        "ms]\n",
        result.times.qp * 1e3, result.times.pr * 1e3, result.times.ps * 1e3,
        result.times.po * 1e3, result.times.ap * 1e3);
  }
  return 0;
}
