// Distributed Q/A on a simulated 12-node cluster: builds a corpus, plans a
// workload, runs the three load-balancing policies of the paper (DNS,
// INTER, DQA) under sustained overload, and prints a Figure-7-style trace
// of one partitioned question.

#include <cstdio>

#include "cluster/system.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "corpus/generator.hpp"
#include "qa/engine.hpp"

int main() {
  using namespace qadist;
  using cluster::Policy;

  // --- World.
  corpus::CorpusConfig cc;
  cc.seed = 7;
  cc.num_documents = 800;
  const auto world = corpus::generate_corpus(cc);
  qa::EngineConfig ec;
  ec.min_paragraphs_per_subcollection = 40;
  ec.ordering.relative_threshold = 0.3;
  const qa::Engine engine(world, ec);
  const auto questions = corpus::generate_questions(world, 96, /*seed=*/3);

  // --- Cost model + plans: execute the real pipeline once per question.
  const auto cost = cluster::CostModel::calibrate(
      engine, std::span<const corpus::Question>(questions).subspan(0, 24));
  std::vector<cluster::QuestionPlan> plans;
  for (const auto& q : questions) {
    plans.push_back(cluster::make_plan(engine, cost, q));
  }
  // Bimodal workload like the paper's mixed TREC-8/TREC-9 question set:
  // every other question is a light one (48 s vs 94 s average service).
  for (std::size_t i = 0; i < plans.size(); i += 2) {
    cluster::scale_plan(plans[i], 48.0 / 94.0);
  }
  double mean_service = 0.0;
  for (const auto& p : plans) {
    mean_service += p.total_cpu_seconds() +
                    p.total_disk_bytes() /
                        cost.anchors().reference_disk.bytes_per_second;
  }
  mean_service /= static_cast<double>(plans.size());
  std::printf("workload: %zu questions, mean sequential service %.1f s\n",
              plans.size(), mean_service);

  // --- Run the three policies on 12 nodes.
  TextTable table({"Policy", "Throughput (q/min)", "Mean latency (s)",
                   "p95 latency (s)", "Migrations QA/PR/AP"});
  for (Policy policy : {Policy::kDns, Policy::kInter, Policy::kDqa}) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg;
    cfg.nodes = 12;
    cfg.dispatch.policy = policy;
    cfg.partition.ap_chunk = 8;
    cluster::System system(sim, cfg);
    Rng arrivals(42);
    Seconds at = 0.0;
    for (const auto& plan : plans) {
      system.submit(plan, at);
      at += arrivals.uniform(0.0, mean_service / 12.0);
    }
    const auto m = system.run();
    table.add_row({std::string(to_string(policy)),
                   cell(m.throughput_qpm(), 2), cell(m.latencies.mean(), 1),
                   cell(m.latencies.quantile(0.95), 1),
                   std::to_string(m.migrations_qa) + "/" +
                       std::to_string(m.migrations_pr) + "/" +
                       std::to_string(m.migrations_ap)});
  }
  std::printf("\n12-node cluster under sustained 2x overload:\n%s\n",
              table.render().c_str());

  // --- One partitioned question, traced (cf. paper Fig. 7).
  simnet::Simulation sim;
  cluster::SystemConfig cfg;
  cfg.nodes = 4;
  cfg.partition.ap_chunk = 8;
  cluster::System system(sim, cfg);
  cluster::TraceRecorder trace;
  system.set_trace(&trace);
  system.submit(plans[0], 0.0);
  (void)system.run();
  std::printf("Execution trace of one question on an idle 4-node system:\n%s",
              trace.render().c_str());
  return 0;
}
