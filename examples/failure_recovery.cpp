// Failure recovery in the partitioning algorithms (paper Fig. 5c / 6b):
// injects worker deaths into the sender- and receiver-controlled
// distributors and shows that every paragraph is still processed exactly
// once and the final answers are unchanged.

#include <cstdio>

#include "common/table.hpp"
#include "corpus/generator.hpp"
#include "parallel/qa_stages.hpp"
#include "qa/engine.hpp"

int main() {
  using namespace qadist;
  using parallel::ExecutorOptions;
  using parallel::FailureSpec;
  using parallel::Strategy;

  corpus::CorpusConfig cc;
  cc.seed = 31;
  cc.num_documents = 700;
  const auto world = corpus::generate_corpus(cc);
  qa::EngineConfig ec;
  ec.min_paragraphs_per_subcollection = 40;
  ec.ordering.relative_threshold = 0.3;
  const qa::Engine engine(world, ec);
  const auto questions = corpus::generate_questions(world, 4, /*seed=*/8);
  const auto& q = questions.front();

  // Prepare the accepted-paragraph set once.
  auto pq = engine.process_question(q.id, q.text);
  std::vector<qa::ScoredParagraph> scored;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    for (auto& p : engine.retrieve(sub, pq)) {
      scored.push_back(engine.score(pq, std::move(p)));
    }
  }
  const auto accepted = engine.order(std::move(scored));
  const auto reference = engine.answer_paragraphs(pq, accepted);
  std::printf("question: %s\naccepted paragraphs: %zu, reference answers: %zu\n\n",
              q.text.c_str(), accepted.size(), reference.size());

  parallel::ThreadPool pool(4);
  TextTable table({"Strategy", "Injected failures", "Dispatch rounds",
                   "Survivors", "Answers match?"});
  struct Scenario {
    Strategy strategy;
    std::vector<FailureSpec> failures;
    const char* label;
  };
  const Scenario scenarios[] = {
      {Strategy::kSend, {{1, 3}}, "worker 1 after 3 items"},
      {Strategy::kSend, {{0, 0}, {2, 5}}, "worker 0 at start, worker 2 after 5"},
      {Strategy::kIsend, {{3, 2}}, "worker 3 after 2 items"},
      {Strategy::kRecv, {{1, 1}}, "worker 1 after 1 item"},
      {Strategy::kRecv, {{0, 2}, {1, 2}, {2, 2}}, "three workers after 2 items"},
  };
  for (const auto& s : scenarios) {
    ExecutorOptions options;
    options.strategy = s.strategy;
    options.workers = 4;
    options.chunk_size = 4;
    options.failures = s.failures;
    const auto result = parallel::parallel_answer_processing(
        engine, pq, accepted, pool, options);

    bool match = result.answers.size() == reference.size();
    for (std::size_t i = 0; match && i < reference.size(); ++i) {
      match = result.answers[i].candidate == reference[i].candidate;
    }
    table.add_row({std::string(to_string(s.strategy)), s.label,
                   std::to_string(result.report.rounds),
                   std::to_string(result.report.surviving_workers) + "/4",
                   match ? "yes" : "NO"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "Sender-controlled recovery re-dispatches the unprocessed partitions "
      "(extra rounds); receiver-controlled recovery returns the dead "
      "worker's chunk remainder to the shared set.\n");
  return 0;
}
