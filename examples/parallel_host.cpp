// Intra-question parallelism on the host: answers questions with the PR+PS
// and AP stages spread over real threads using the paper's partitioning
// strategies, and shows that the parallel answers match the sequential
// pipeline exactly (the merging/sorting invariant of paper Sec. 3.2).

#include <cstdio>

#include "common/table.hpp"
#include "corpus/generator.hpp"
#include "parallel/qa_stages.hpp"
#include "qa/engine.hpp"

int main() {
  using namespace qadist;
  using parallel::ExecutorOptions;
  using parallel::Strategy;

  corpus::CorpusConfig cc;
  cc.seed = 99;
  cc.num_documents = 900;
  const auto world = corpus::generate_corpus(cc);
  qa::EngineConfig ec;
  ec.min_paragraphs_per_subcollection = 40;
  ec.ordering.relative_threshold = 0.3;
  const qa::Engine engine(world, ec);
  const auto questions = corpus::generate_questions(world, 12, /*seed=*/1);

  parallel::ThreadPool pool(4);
  ExecutorOptions pr_options;
  pr_options.strategy = Strategy::kRecv;
  pr_options.workers = 4;
  pr_options.chunk_size = 1;  // one sub-collection per claim
  ExecutorOptions ap_options;
  ap_options.strategy = Strategy::kRecv;
  ap_options.workers = 4;
  ap_options.chunk_size = 8;

  TextTable table({"Question", "Answer (parallel)", "Matches sequential?",
                   "Accepted paragraphs"});
  for (const auto& q : questions) {
    const auto sequential = engine.answer(q);
    const auto parallel_result = parallel::answer_parallel(
        engine, q.id, q.text, pool, pr_options, ap_options);

    bool match = sequential.answers.size() == parallel_result.answers.size();
    for (std::size_t i = 0; match && i < sequential.answers.size(); ++i) {
      match = sequential.answers[i].candidate ==
              parallel_result.answers[i].candidate;
    }
    table.add_row(
        {q.text.substr(0, 44),
         parallel_result.answers.empty()
             ? "(none)"
             : parallel_result.answers.front().candidate,
         match ? "yes" : "NO",
         std::to_string(parallel_result.work.paragraphs_accepted)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "Every row must say 'yes': partitioning + answer merging/sorting is "
      "result-transparent regardless of thread interleaving.\n");
  return 0;
}
