// Persistence tour: saves the generated collection and its per-sub-
// collection indexes to disk, loads them back, and answers a question from
// the loaded artifacts — the "each node keeps a copy of the collection on
// its local disk" deployment story of the paper, as a real I/O path.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/strings.hpp"
#include "corpus/generator.hpp"
#include "ir/persist.hpp"
#include "qa/engine.hpp"

int main() {
  using namespace qadist;
  namespace fs = std::filesystem;

  const fs::path dir = fs::temp_directory_path() / "qadist_example";
  fs::create_directories(dir);

  // --- Generate and persist.
  corpus::CorpusConfig cc;
  cc.seed = 55;
  cc.num_documents = 500;
  const auto world = corpus::generate_corpus(cc);
  const auto collection_path = (dir / "collection.bin").string();
  ir::save_collection_file(world.collection, collection_path);
  std::printf("saved collection: %s (%s)\n", collection_path.c_str(),
              format_bytes(static_cast<double>(
                               fs::file_size(collection_path)))
                  .c_str());

  ir::Analyzer analyzer;
  const auto subs = corpus::split_collection(world.collection, 8);
  std::size_t index_bytes = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto index = ir::InvertedIndex::build(subs[i], analyzer);
    const auto path = (dir / ("index_" + std::to_string(i) + ".bin")).string();
    std::ofstream out(path, std::ios::binary);
    index.save(out);
    index_bytes += fs::file_size(path);
  }
  std::printf("saved 8 sub-collection indexes (%s total)\n",
              format_bytes(static_cast<double>(index_bytes)).c_str());

  // --- Load everything back and answer a question from the loaded data.
  const auto loaded = ir::load_collection_file(collection_path);
  std::printf("loaded collection: %zu documents, %zu paragraphs\n",
              loaded.size(), loaded.total_paragraphs());
  for (std::size_t i = 0; i < 8; ++i) {
    const auto path = (dir / ("index_" + std::to_string(i) + ".bin")).string();
    std::ifstream in(path, std::ios::binary);
    const auto index = ir::InvertedIndex::load(in);
    std::printf("  index %zu: %zu terms, %zu postings\n", i,
                index.term_count(), index.posting_count());
  }

  // Answering uses the engine over the loaded collection. The gazetteer is
  // part of the generated world; a production deployment would persist it
  // the same way (it is a plain string->type table).
  corpus::GeneratedCorpus reloaded;
  reloaded.collection = loaded;
  reloaded.gazetteer = world.gazetteer;
  reloaded.facts = world.facts;
  const qa::Engine engine(reloaded);
  const auto questions = corpus::generate_questions(world, 1, /*seed=*/2);
  const auto result = engine.answer(questions.front());
  std::printf("\nQ: %s\n", questions.front().text.c_str());
  if (!result.answers.empty()) {
    std::printf("A: %s (gold: %s)\n", result.answers.front().candidate.c_str(),
                questions.front().gold_answer.c_str());
  }

  fs::remove_all(dir);
  return 0;
}
