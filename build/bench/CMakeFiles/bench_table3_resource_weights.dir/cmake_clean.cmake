file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_resource_weights.dir/bench_table3_resource_weights.cpp.o"
  "CMakeFiles/bench_table3_resource_weights.dir/bench_table3_resource_weights.cpp.o.d"
  "bench_table3_resource_weights"
  "bench_table3_resource_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_resource_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
