# Empty compiler generated dependencies file for bench_table3_resource_weights.
# This may be replaced when dependencies are built.
