# Empty dependencies file for bench_table9_overhead.
# This may be replaced when dependencies are built.
