file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simnet.dir/bench_micro_simnet.cpp.o"
  "CMakeFiles/bench_micro_simnet.dir/bench_micro_simnet.cpp.o.d"
  "bench_micro_simnet"
  "bench_micro_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
