# Empty dependencies file for bench_micro_simnet.
# This may be replaced when dependencies are built.
