# Empty dependencies file for bench_elastic_membership.
# This may be replaced when dependencies are built.
