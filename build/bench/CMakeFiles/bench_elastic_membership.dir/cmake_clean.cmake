file(REMOVE_RECURSE
  "CMakeFiles/bench_elastic_membership.dir/bench_elastic_membership.cpp.o"
  "CMakeFiles/bench_elastic_membership.dir/bench_elastic_membership.cpp.o.d"
  "bench_elastic_membership"
  "bench_elastic_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elastic_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
