file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_module_times.dir/bench_table8_module_times.cpp.o"
  "CMakeFiles/bench_table8_module_times.dir/bench_table8_module_times.cpp.o.d"
  "bench_table8_module_times"
  "bench_table8_module_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_module_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
