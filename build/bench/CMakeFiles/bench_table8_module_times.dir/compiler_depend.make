# Empty compiler generated dependencies file for bench_table8_module_times.
# This may be replaced when dependencies are built.
