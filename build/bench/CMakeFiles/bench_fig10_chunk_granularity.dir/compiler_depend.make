# Empty compiler generated dependencies file for bench_fig10_chunk_granularity.
# This may be replaced when dependencies are built.
