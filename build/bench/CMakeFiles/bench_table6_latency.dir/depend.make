# Empty dependencies file for bench_table6_latency.
# This may be replaced when dependencies are built.
