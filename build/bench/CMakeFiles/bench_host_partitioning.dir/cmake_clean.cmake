file(REMOVE_RECURSE
  "CMakeFiles/bench_host_partitioning.dir/bench_host_partitioning.cpp.o"
  "CMakeFiles/bench_host_partitioning.dir/bench_host_partitioning.cpp.o.d"
  "bench_host_partitioning"
  "bench_host_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
