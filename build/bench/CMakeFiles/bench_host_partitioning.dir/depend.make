# Empty dependencies file for bench_host_partitioning.
# This may be replaced when dependencies are built.
