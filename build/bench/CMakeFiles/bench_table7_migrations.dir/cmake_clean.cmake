file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_migrations.dir/bench_table7_migrations.cpp.o"
  "CMakeFiles/bench_table7_migrations.dir/bench_table7_migrations.cpp.o.d"
  "bench_table7_migrations"
  "bench_table7_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
