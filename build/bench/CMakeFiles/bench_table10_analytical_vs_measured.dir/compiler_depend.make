# Empty compiler generated dependencies file for bench_table10_analytical_vs_measured.
# This may be replaced when dependencies are built.
