file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_practical_limits.dir/bench_table4_practical_limits.cpp.o"
  "CMakeFiles/bench_table4_practical_limits.dir/bench_table4_practical_limits.cpp.o.d"
  "bench_table4_practical_limits"
  "bench_table4_practical_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_practical_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
