# Empty compiler generated dependencies file for bench_table4_practical_limits.
# This may be replaced when dependencies are built.
