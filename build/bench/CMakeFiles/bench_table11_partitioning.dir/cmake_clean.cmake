file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_partitioning.dir/bench_table11_partitioning.cpp.o"
  "CMakeFiles/bench_table11_partitioning.dir/bench_table11_partitioning.cpp.o.d"
  "bench_table11_partitioning"
  "bench_table11_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
