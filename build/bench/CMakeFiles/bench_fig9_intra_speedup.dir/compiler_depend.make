# Empty compiler generated dependencies file for bench_fig9_intra_speedup.
# This may be replaced when dependencies are built.
