# Empty dependencies file for qadist_bench_support.
# This may be replaced when dependencies are built.
