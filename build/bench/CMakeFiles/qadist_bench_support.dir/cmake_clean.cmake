file(REMOVE_RECURSE
  "CMakeFiles/qadist_bench_support.dir/support/bench_world.cpp.o"
  "CMakeFiles/qadist_bench_support.dir/support/bench_world.cpp.o.d"
  "lib/libqadist_bench_support.a"
  "lib/libqadist_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
