file(REMOVE_RECURSE
  "lib/libqadist_bench_support.a"
)
