
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qa/test_answer_processing.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_answer_processing.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_answer_processing.cpp.o.d"
  "/root/repo/tests/qa/test_answer_window.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_answer_window.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_answer_window.cpp.o.d"
  "/root/repo/tests/qa/test_engine.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_engine.cpp.o.d"
  "/root/repo/tests/qa/test_engine_config.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_engine_config.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_engine_config.cpp.o.d"
  "/root/repo/tests/qa/test_evaluation.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_evaluation.cpp.o.d"
  "/root/repo/tests/qa/test_ner.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_ner.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_ner.cpp.o.d"
  "/root/repo/tests/qa/test_pipeline_properties.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_pipeline_properties.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_pipeline_properties.cpp.o.d"
  "/root/repo/tests/qa/test_question_processing.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_question_processing.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_question_processing.cpp.o.d"
  "/root/repo/tests/qa/test_scoring.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_scoring.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_scoring.cpp.o.d"
  "/root/repo/tests/qa/test_text_match.cpp" "tests/CMakeFiles/test_qa.dir/qa/test_text_match.cpp.o" "gcc" "tests/CMakeFiles/test_qa.dir/qa/test_text_match.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/qadist_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qadist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/qadist_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/qadist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/qadist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
