file(REMOVE_RECURSE
  "CMakeFiles/test_qa.dir/qa/test_answer_processing.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_answer_processing.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_answer_window.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_answer_window.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_engine.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_engine.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_engine_config.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_engine_config.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_evaluation.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_evaluation.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_ner.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_ner.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_pipeline_properties.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_pipeline_properties.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_question_processing.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_question_processing.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_scoring.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_scoring.cpp.o.d"
  "CMakeFiles/test_qa.dir/qa/test_text_match.cpp.o"
  "CMakeFiles/test_qa.dir/qa/test_text_match.cpp.o.d"
  "test_qa"
  "test_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
