
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_load.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_load.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_load.cpp.o.d"
  "/root/repo/tests/sched/test_load_table.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_load_table.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_load_table.cpp.o.d"
  "/root/repo/tests/sched/test_meta_properties.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_meta_properties.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_meta_properties.cpp.o.d"
  "/root/repo/tests/sched/test_meta_scheduler.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_meta_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_meta_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/qadist_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qadist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/qadist_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/qadist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/qadist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
