file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_load.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_load.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_load_table.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_load_table.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_meta_properties.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_meta_properties.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_meta_scheduler.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_meta_scheduler.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
