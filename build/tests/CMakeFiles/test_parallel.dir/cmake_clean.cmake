file(REMOVE_RECURSE
  "CMakeFiles/test_parallel.dir/parallel/test_executor.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_executor.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_partition.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_partition.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_partition_properties.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_partition_properties.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_qa_stages.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_qa_stages.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_thread_pool.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_thread_pool.cpp.o.d"
  "test_parallel"
  "test_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
