
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet/test_engine_stress.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/test_engine_stress.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/test_engine_stress.cpp.o.d"
  "/root/repo/tests/simnet/test_fair_share.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/test_fair_share.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/test_fair_share.cpp.o.d"
  "/root/repo/tests/simnet/test_link.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/test_link.cpp.o.d"
  "/root/repo/tests/simnet/test_primitives.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/test_primitives.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/test_primitives.cpp.o.d"
  "/root/repo/tests/simnet/test_simulation.cpp" "tests/CMakeFiles/test_simnet.dir/simnet/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_simnet.dir/simnet/test_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/qadist_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qadist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/qadist_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/qadist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/qadist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
