file(REMOVE_RECURSE
  "CMakeFiles/test_simnet.dir/simnet/test_engine_stress.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_engine_stress.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_fair_share.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_fair_share.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_link.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_link.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_primitives.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_primitives.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_simulation.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_simulation.cpp.o.d"
  "test_simnet"
  "test_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
