file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/test_cost_model.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_cost_model.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_cost_variants.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_cost_variants.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_heterogeneous.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_heterogeneous.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_membership.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_membership.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_system.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_system.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_system_edge.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_system_edge.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_trace.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_trace.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_two_choice.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_two_choice.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_workload.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_workload.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
