
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/test_cost_model.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_cost_model.cpp.o.d"
  "/root/repo/tests/cluster/test_cost_variants.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_cost_variants.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_cost_variants.cpp.o.d"
  "/root/repo/tests/cluster/test_heterogeneous.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_heterogeneous.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_heterogeneous.cpp.o.d"
  "/root/repo/tests/cluster/test_membership.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_membership.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_membership.cpp.o.d"
  "/root/repo/tests/cluster/test_system.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_system.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_system.cpp.o.d"
  "/root/repo/tests/cluster/test_system_edge.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_system_edge.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_system_edge.cpp.o.d"
  "/root/repo/tests/cluster/test_trace.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_trace.cpp.o.d"
  "/root/repo/tests/cluster/test_two_choice.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_two_choice.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_two_choice.cpp.o.d"
  "/root/repo/tests/cluster/test_workload.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/qadist_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qadist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/qadist_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/qadist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/qadist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
