file(REMOVE_RECURSE
  "CMakeFiles/test_corpus.dir/corpus/test_collection.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_collection.cpp.o.d"
  "CMakeFiles/test_corpus.dir/corpus/test_entity.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_entity.cpp.o.d"
  "CMakeFiles/test_corpus.dir/corpus/test_generator.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_generator.cpp.o.d"
  "CMakeFiles/test_corpus.dir/corpus/test_name_forge.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_name_forge.cpp.o.d"
  "CMakeFiles/test_corpus.dir/corpus/test_split_skew.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_split_skew.cpp.o.d"
  "CMakeFiles/test_corpus.dir/corpus/test_vocabulary.cpp.o"
  "CMakeFiles/test_corpus.dir/corpus/test_vocabulary.cpp.o.d"
  "test_corpus"
  "test_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
