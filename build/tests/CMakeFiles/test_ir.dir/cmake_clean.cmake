file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/ir/test_analyzer.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_analyzer.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_analyzer_fuzz.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_analyzer_fuzz.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_index.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_index.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_persist.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_persist.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_retrieval.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_retrieval.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_world_persist.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_world_persist.cpp.o.d"
  "test_ir"
  "test_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
