# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simnet "/root/repo/build/tests/test_simnet")
set_tests_properties(test_simnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_corpus "/root/repo/build/tests/test_corpus")
set_tests_properties(test_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;25;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;33;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_qa "/root/repo/build/tests/test_qa")
set_tests_properties(test_qa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;41;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;53;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;59;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;62;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel "/root/repo/build/tests/test_parallel")
set_tests_properties(test_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;73;qadist_add_test;/root/repo/tests/CMakeLists.txt;0;")
