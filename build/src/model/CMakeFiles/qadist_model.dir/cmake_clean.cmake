file(REMOVE_RECURSE
  "CMakeFiles/qadist_model.dir/inter_question.cpp.o"
  "CMakeFiles/qadist_model.dir/inter_question.cpp.o.d"
  "CMakeFiles/qadist_model.dir/intra_question.cpp.o"
  "CMakeFiles/qadist_model.dir/intra_question.cpp.o.d"
  "libqadist_model.a"
  "libqadist_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
