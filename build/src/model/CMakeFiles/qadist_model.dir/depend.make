# Empty dependencies file for qadist_model.
# This may be replaced when dependencies are built.
