file(REMOVE_RECURSE
  "libqadist_model.a"
)
