
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/executor.cpp" "src/parallel/CMakeFiles/qadist_parallel.dir/executor.cpp.o" "gcc" "src/parallel/CMakeFiles/qadist_parallel.dir/executor.cpp.o.d"
  "/root/repo/src/parallel/partition.cpp" "src/parallel/CMakeFiles/qadist_parallel.dir/partition.cpp.o" "gcc" "src/parallel/CMakeFiles/qadist_parallel.dir/partition.cpp.o.d"
  "/root/repo/src/parallel/qa_stages.cpp" "src/parallel/CMakeFiles/qadist_parallel.dir/qa_stages.cpp.o" "gcc" "src/parallel/CMakeFiles/qadist_parallel.dir/qa_stages.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/qadist_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/qadist_parallel.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
