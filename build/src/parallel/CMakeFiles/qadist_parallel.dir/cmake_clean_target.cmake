file(REMOVE_RECURSE
  "libqadist_parallel.a"
)
