file(REMOVE_RECURSE
  "CMakeFiles/qadist_parallel.dir/executor.cpp.o"
  "CMakeFiles/qadist_parallel.dir/executor.cpp.o.d"
  "CMakeFiles/qadist_parallel.dir/partition.cpp.o"
  "CMakeFiles/qadist_parallel.dir/partition.cpp.o.d"
  "CMakeFiles/qadist_parallel.dir/qa_stages.cpp.o"
  "CMakeFiles/qadist_parallel.dir/qa_stages.cpp.o.d"
  "CMakeFiles/qadist_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/qadist_parallel.dir/thread_pool.cpp.o.d"
  "libqadist_parallel.a"
  "libqadist_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
