# Empty compiler generated dependencies file for qadist_parallel.
# This may be replaced when dependencies are built.
