file(REMOVE_RECURSE
  "libqadist_sched.a"
)
