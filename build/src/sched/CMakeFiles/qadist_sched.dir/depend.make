# Empty dependencies file for qadist_sched.
# This may be replaced when dependencies are built.
