file(REMOVE_RECURSE
  "CMakeFiles/qadist_sched.dir/dispatcher.cpp.o"
  "CMakeFiles/qadist_sched.dir/dispatcher.cpp.o.d"
  "CMakeFiles/qadist_sched.dir/load_table.cpp.o"
  "CMakeFiles/qadist_sched.dir/load_table.cpp.o.d"
  "CMakeFiles/qadist_sched.dir/meta_scheduler.cpp.o"
  "CMakeFiles/qadist_sched.dir/meta_scheduler.cpp.o.d"
  "libqadist_sched.a"
  "libqadist_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
