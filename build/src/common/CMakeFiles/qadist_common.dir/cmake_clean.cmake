file(REMOVE_RECURSE
  "CMakeFiles/qadist_common.dir/log.cpp.o"
  "CMakeFiles/qadist_common.dir/log.cpp.o.d"
  "CMakeFiles/qadist_common.dir/rng.cpp.o"
  "CMakeFiles/qadist_common.dir/rng.cpp.o.d"
  "CMakeFiles/qadist_common.dir/stats.cpp.o"
  "CMakeFiles/qadist_common.dir/stats.cpp.o.d"
  "CMakeFiles/qadist_common.dir/strings.cpp.o"
  "CMakeFiles/qadist_common.dir/strings.cpp.o.d"
  "CMakeFiles/qadist_common.dir/table.cpp.o"
  "CMakeFiles/qadist_common.dir/table.cpp.o.d"
  "CMakeFiles/qadist_common.dir/zipf.cpp.o"
  "CMakeFiles/qadist_common.dir/zipf.cpp.o.d"
  "libqadist_common.a"
  "libqadist_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
