file(REMOVE_RECURSE
  "libqadist_common.a"
)
