# Empty compiler generated dependencies file for qadist_common.
# This may be replaced when dependencies are built.
