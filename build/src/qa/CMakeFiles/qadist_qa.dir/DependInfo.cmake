
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/answer_processing.cpp" "src/qa/CMakeFiles/qadist_qa.dir/answer_processing.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/answer_processing.cpp.o.d"
  "/root/repo/src/qa/engine.cpp" "src/qa/CMakeFiles/qadist_qa.dir/engine.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/engine.cpp.o.d"
  "/root/repo/src/qa/evaluation.cpp" "src/qa/CMakeFiles/qadist_qa.dir/evaluation.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/evaluation.cpp.o.d"
  "/root/repo/src/qa/ner.cpp" "src/qa/CMakeFiles/qadist_qa.dir/ner.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/ner.cpp.o.d"
  "/root/repo/src/qa/paragraph_ordering.cpp" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_ordering.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_ordering.cpp.o.d"
  "/root/repo/src/qa/paragraph_retrieval.cpp" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_retrieval.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_retrieval.cpp.o.d"
  "/root/repo/src/qa/paragraph_scoring.cpp" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_scoring.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/paragraph_scoring.cpp.o.d"
  "/root/repo/src/qa/question_processing.cpp" "src/qa/CMakeFiles/qadist_qa.dir/question_processing.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/question_processing.cpp.o.d"
  "/root/repo/src/qa/text_match.cpp" "src/qa/CMakeFiles/qadist_qa.dir/text_match.cpp.o" "gcc" "src/qa/CMakeFiles/qadist_qa.dir/text_match.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
