file(REMOVE_RECURSE
  "CMakeFiles/qadist_qa.dir/answer_processing.cpp.o"
  "CMakeFiles/qadist_qa.dir/answer_processing.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/engine.cpp.o"
  "CMakeFiles/qadist_qa.dir/engine.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/evaluation.cpp.o"
  "CMakeFiles/qadist_qa.dir/evaluation.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/ner.cpp.o"
  "CMakeFiles/qadist_qa.dir/ner.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/paragraph_ordering.cpp.o"
  "CMakeFiles/qadist_qa.dir/paragraph_ordering.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/paragraph_retrieval.cpp.o"
  "CMakeFiles/qadist_qa.dir/paragraph_retrieval.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/paragraph_scoring.cpp.o"
  "CMakeFiles/qadist_qa.dir/paragraph_scoring.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/question_processing.cpp.o"
  "CMakeFiles/qadist_qa.dir/question_processing.cpp.o.d"
  "CMakeFiles/qadist_qa.dir/text_match.cpp.o"
  "CMakeFiles/qadist_qa.dir/text_match.cpp.o.d"
  "libqadist_qa.a"
  "libqadist_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
