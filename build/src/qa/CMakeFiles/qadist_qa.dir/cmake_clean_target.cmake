file(REMOVE_RECURSE
  "libqadist_qa.a"
)
