# Empty dependencies file for qadist_qa.
# This may be replaced when dependencies are built.
