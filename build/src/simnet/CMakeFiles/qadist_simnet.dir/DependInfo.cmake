
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/fair_share.cpp" "src/simnet/CMakeFiles/qadist_simnet.dir/fair_share.cpp.o" "gcc" "src/simnet/CMakeFiles/qadist_simnet.dir/fair_share.cpp.o.d"
  "/root/repo/src/simnet/simulation.cpp" "src/simnet/CMakeFiles/qadist_simnet.dir/simulation.cpp.o" "gcc" "src/simnet/CMakeFiles/qadist_simnet.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
