# Empty dependencies file for qadist_simnet.
# This may be replaced when dependencies are built.
