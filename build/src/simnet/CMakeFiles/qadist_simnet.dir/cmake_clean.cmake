file(REMOVE_RECURSE
  "CMakeFiles/qadist_simnet.dir/fair_share.cpp.o"
  "CMakeFiles/qadist_simnet.dir/fair_share.cpp.o.d"
  "CMakeFiles/qadist_simnet.dir/simulation.cpp.o"
  "CMakeFiles/qadist_simnet.dir/simulation.cpp.o.d"
  "libqadist_simnet.a"
  "libqadist_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
