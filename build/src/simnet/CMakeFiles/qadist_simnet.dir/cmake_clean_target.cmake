file(REMOVE_RECURSE
  "libqadist_simnet.a"
)
