file(REMOVE_RECURSE
  "CMakeFiles/qadist_ir.dir/analyzer.cpp.o"
  "CMakeFiles/qadist_ir.dir/analyzer.cpp.o.d"
  "CMakeFiles/qadist_ir.dir/binary_io.cpp.o"
  "CMakeFiles/qadist_ir.dir/binary_io.cpp.o.d"
  "CMakeFiles/qadist_ir.dir/inverted_index.cpp.o"
  "CMakeFiles/qadist_ir.dir/inverted_index.cpp.o.d"
  "CMakeFiles/qadist_ir.dir/persist.cpp.o"
  "CMakeFiles/qadist_ir.dir/persist.cpp.o.d"
  "CMakeFiles/qadist_ir.dir/retrieval.cpp.o"
  "CMakeFiles/qadist_ir.dir/retrieval.cpp.o.d"
  "libqadist_ir.a"
  "libqadist_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
