file(REMOVE_RECURSE
  "libqadist_ir.a"
)
