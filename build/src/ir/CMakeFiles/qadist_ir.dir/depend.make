# Empty dependencies file for qadist_ir.
# This may be replaced when dependencies are built.
