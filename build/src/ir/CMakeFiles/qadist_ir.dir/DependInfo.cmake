
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analyzer.cpp" "src/ir/CMakeFiles/qadist_ir.dir/analyzer.cpp.o" "gcc" "src/ir/CMakeFiles/qadist_ir.dir/analyzer.cpp.o.d"
  "/root/repo/src/ir/binary_io.cpp" "src/ir/CMakeFiles/qadist_ir.dir/binary_io.cpp.o" "gcc" "src/ir/CMakeFiles/qadist_ir.dir/binary_io.cpp.o.d"
  "/root/repo/src/ir/inverted_index.cpp" "src/ir/CMakeFiles/qadist_ir.dir/inverted_index.cpp.o" "gcc" "src/ir/CMakeFiles/qadist_ir.dir/inverted_index.cpp.o.d"
  "/root/repo/src/ir/persist.cpp" "src/ir/CMakeFiles/qadist_ir.dir/persist.cpp.o" "gcc" "src/ir/CMakeFiles/qadist_ir.dir/persist.cpp.o.d"
  "/root/repo/src/ir/retrieval.cpp" "src/ir/CMakeFiles/qadist_ir.dir/retrieval.cpp.o" "gcc" "src/ir/CMakeFiles/qadist_ir.dir/retrieval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
