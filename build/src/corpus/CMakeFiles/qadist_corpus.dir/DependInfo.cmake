
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/collection.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/collection.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/collection.cpp.o.d"
  "/root/repo/src/corpus/entity.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/entity.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/entity.cpp.o.d"
  "/root/repo/src/corpus/fact.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/fact.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/fact.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/generator.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/generator.cpp.o.d"
  "/root/repo/src/corpus/name_forge.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/name_forge.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/name_forge.cpp.o.d"
  "/root/repo/src/corpus/vocabulary.cpp" "src/corpus/CMakeFiles/qadist_corpus.dir/vocabulary.cpp.o" "gcc" "src/corpus/CMakeFiles/qadist_corpus.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
