file(REMOVE_RECURSE
  "libqadist_corpus.a"
)
