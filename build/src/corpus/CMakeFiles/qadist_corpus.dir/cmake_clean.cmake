file(REMOVE_RECURSE
  "CMakeFiles/qadist_corpus.dir/collection.cpp.o"
  "CMakeFiles/qadist_corpus.dir/collection.cpp.o.d"
  "CMakeFiles/qadist_corpus.dir/entity.cpp.o"
  "CMakeFiles/qadist_corpus.dir/entity.cpp.o.d"
  "CMakeFiles/qadist_corpus.dir/fact.cpp.o"
  "CMakeFiles/qadist_corpus.dir/fact.cpp.o.d"
  "CMakeFiles/qadist_corpus.dir/generator.cpp.o"
  "CMakeFiles/qadist_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/qadist_corpus.dir/name_forge.cpp.o"
  "CMakeFiles/qadist_corpus.dir/name_forge.cpp.o.d"
  "CMakeFiles/qadist_corpus.dir/vocabulary.cpp.o"
  "CMakeFiles/qadist_corpus.dir/vocabulary.cpp.o.d"
  "libqadist_corpus.a"
  "libqadist_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
