# Empty compiler generated dependencies file for qadist_corpus.
# This may be replaced when dependencies are built.
