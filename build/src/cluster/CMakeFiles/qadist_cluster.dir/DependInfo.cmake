
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cost_model.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/cost_model.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/cost_model.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/plan.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/plan.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/plan.cpp.o.d"
  "/root/repo/src/cluster/system.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/system.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/system.cpp.o.d"
  "/root/repo/src/cluster/trace.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/trace.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/trace.cpp.o.d"
  "/root/repo/src/cluster/workload.cpp" "src/cluster/CMakeFiles/qadist_cluster.dir/workload.cpp.o" "gcc" "src/cluster/CMakeFiles/qadist_cluster.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qadist_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/qadist_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/qadist_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/qadist_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/qadist_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qadist_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/qadist_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
