file(REMOVE_RECURSE
  "CMakeFiles/qadist_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/qadist_cluster.dir/cost_model.cpp.o.d"
  "CMakeFiles/qadist_cluster.dir/node.cpp.o"
  "CMakeFiles/qadist_cluster.dir/node.cpp.o.d"
  "CMakeFiles/qadist_cluster.dir/plan.cpp.o"
  "CMakeFiles/qadist_cluster.dir/plan.cpp.o.d"
  "CMakeFiles/qadist_cluster.dir/system.cpp.o"
  "CMakeFiles/qadist_cluster.dir/system.cpp.o.d"
  "CMakeFiles/qadist_cluster.dir/trace.cpp.o"
  "CMakeFiles/qadist_cluster.dir/trace.cpp.o.d"
  "CMakeFiles/qadist_cluster.dir/workload.cpp.o"
  "CMakeFiles/qadist_cluster.dir/workload.cpp.o.d"
  "libqadist_cluster.a"
  "libqadist_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qadist_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
