# Empty dependencies file for qadist_cluster.
# This may be replaced when dependencies are built.
