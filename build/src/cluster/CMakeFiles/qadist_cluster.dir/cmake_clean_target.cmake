file(REMOVE_RECURSE
  "libqadist_cluster.a"
)
