file(REMOVE_RECURSE
  "CMakeFiles/persistence_tour.dir/persistence_tour.cpp.o"
  "CMakeFiles/persistence_tour.dir/persistence_tour.cpp.o.d"
  "persistence_tour"
  "persistence_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
