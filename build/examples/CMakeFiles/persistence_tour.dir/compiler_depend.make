# Empty compiler generated dependencies file for persistence_tour.
# This may be replaced when dependencies are built.
