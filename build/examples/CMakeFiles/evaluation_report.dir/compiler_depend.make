# Empty compiler generated dependencies file for evaluation_report.
# This may be replaced when dependencies are built.
