file(REMOVE_RECURSE
  "CMakeFiles/evaluation_report.dir/evaluation_report.cpp.o"
  "CMakeFiles/evaluation_report.dir/evaluation_report.cpp.o.d"
  "evaluation_report"
  "evaluation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
