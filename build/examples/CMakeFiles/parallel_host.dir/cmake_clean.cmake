file(REMOVE_RECURSE
  "CMakeFiles/parallel_host.dir/parallel_host.cpp.o"
  "CMakeFiles/parallel_host.dir/parallel_host.cpp.o.d"
  "parallel_host"
  "parallel_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
