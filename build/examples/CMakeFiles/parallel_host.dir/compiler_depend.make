# Empty compiler generated dependencies file for parallel_host.
# This may be replaced when dependencies are built.
