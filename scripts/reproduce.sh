#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# exhibit into results/. Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

mkdir -p results

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee results/tests.txt

echo "== benches =="
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "-- $name"
  "$b" 2>/dev/null | tee "results/$name.txt"
done

echo "== examples =="
for e in "$BUILD_DIR"/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  name="$(basename "$e")"
  echo "-- $name"
  "$e" 2>/dev/null | tee "results/example_$name.txt"
done

echo "All outputs written to results/."
