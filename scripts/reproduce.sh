#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# exhibit into results/. Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

mkdir -p results

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee results/tests.txt

# Every harness must exist, be runnable, and exit zero — a bench that
# silently vanishes or crashes is a coverage loss, so the script fails
# loudly instead of skipping it (pipefail makes the tee pipelines honor
# the binary's exit status).
failures=()

echo "== benches =="
bench_count=0
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] || continue
  name="$(basename "$b")"
  if [ ! -x "$b" ]; then
    echo "ERROR: $name exists but is not executable"
    failures+=("$name (not executable)")
    continue
  fi
  bench_count=$((bench_count + 1))
  echo "-- $name"
  if ! "$b" | tee "results/$name.txt"; then
    echo "ERROR: $name exited non-zero"
    failures+=("$name")
  fi
done
if [ "$bench_count" -eq 0 ]; then
  echo "ERROR: no bench binaries found under $BUILD_DIR/bench"
  failures+=("no bench binaries")
fi

echo "== examples =="
for e in "$BUILD_DIR"/examples/*; do
  [ -f "$e" ] || continue
  name="$(basename "$e")"
  case "$name" in *.cmake | Makefile | *.ninja*) continue ;; esac
  if [ ! -x "$e" ]; then
    echo "ERROR: example $name exists but is not executable"
    failures+=("example_$name (not executable)")
    continue
  fi
  echo "-- $name"
  if ! "$e" | tee "results/example_$name.txt"; then
    echo "ERROR: example $name exited non-zero"
    failures+=("example_$name")
  fi
done

# Structured twins: benches emit machine-readable BENCH_<name>.json
# (schema qadist-bench-v1) next to the text tables, and bench_fig7_traces
# exports TRACE_*.jsonl / TRACE_*.chrome.json (open the latter in
# https://ui.perfetto.dev). List and sanity-check them.
echo "== structured results =="
json_count=0
for j in results/BENCH_*.json; do
  [ -f "$j" ] || continue
  json_count=$((json_count + 1))
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$j" > /dev/null || echo "WARNING: invalid JSON: $j"
  fi
  echo "-- $j"
done
echo "$json_count bench JSON reports in results/."

# One index over all structured reports: results/INDEX.json lists every
# BENCH_*.json with its bench name, schema, and metric names, plus the
# pinned adversarial scenario corpus (results/scenarios/*.json, replayed
# by bench_adversarial), so tooling can discover the exhibits without
# globbing.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'PY'
import datetime
import glob
import json
import os

benches = []
for path in sorted(glob.glob("results/BENCH_*.json")):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"WARNING: skipping {path}: {err}")
        continue
    metrics = sorted({m.get("name", "") for m in doc.get("metrics", [])})
    mtime = os.path.getmtime(path)
    benches.append({
        "file": path,
        "bench": doc.get("bench", ""),
        "schema": doc.get("schema", ""),
        "metrics": metrics,
        "mtime": datetime.datetime.fromtimestamp(
            mtime, datetime.timezone.utc).isoformat(),
    })

scenarios = []
for path in sorted(glob.glob("results/scenarios/*.json")):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"WARNING: skipping {path}: {err}")
        continue
    pin = doc.get("pin", {})
    scenarios.append({
        "file": path,
        "name": doc.get("name", ""),
        "schema": doc.get("schema", ""),
        "nodes": doc.get("nodes", 0),
        "pinned_p99_seconds": pin.get("p99_seconds", 0.0),
        "pinned_degraded_fraction": pin.get("degraded_fraction", 0.0),
        "baseline_p99_seconds": pin.get("baseline_p99_seconds", 0.0),
    })

index = {
    "schema": "qadist-bench-index-v1",
    "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "benches": benches,
    "adversarial_scenarios": scenarios,
}
with open("results/INDEX.json", "w") as f:
    json.dump(index, f, indent=2)
    f.write("\n")
print(f"results/INDEX.json indexes {len(benches)} reports and "
      f"{len(scenarios)} pinned adversarial scenarios.")
PY
else
  echo "python3 not found; skipping results/INDEX.json."
fi

if [ "${#failures[@]}" -gt 0 ]; then
  echo "REPRODUCE FAILED — ${#failures[@]} harness(es) missing or broken:"
  printf '  %s\n' "${failures[@]}"
  exit 1
fi

echo "All outputs written to results/."
