#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json reports (schema qadist-bench-v1).

Compares freshly produced reports against committed baselines, metric by
metric, with direction-aware relative tolerances:

  * lower-is-better metrics (latency, makespan, overheads, ...) fail when
    the fresh mean exceeds baseline * (1 + tolerance);
  * higher-is-better metrics (throughput, speedup, fractions, ...) fail
    when the fresh mean drops below baseline * (1 - tolerance);
  * everything else is gated two-sided.

The baseline set drives the comparison: every metric present in a baseline
report must still exist in the fresh report (a vanished metric is a silent
coverage loss, so it fails the gate); metrics that only exist in the fresh
report are reported but never fail.

Usage:
  scripts/check_regression.py --baseline results/baselines_smoke \
      --fresh /tmp/fresh_results [--tolerance 0.25] [--verbose]
  scripts/check_regression.py --baseline ... --fresh ... --self-test

--self-test perturbs one gated metric of every compared report by 2x in
the failing direction and exits non-zero unless the gate catches all of
them — the "does the alarm actually ring" check CI runs next to the real
comparison. Exit codes: 0 pass, 1 regressions (or missed self-test), 2
usage/configuration errors.

Only the Python standard library is used.
"""

import argparse
import glob
import json
import os
import sys

# Substring -> direction. First match wins; order is meaningful (e.g.
# "non_degraded_fraction" must hit "fraction" as higher-is-better even
# though "degraded" alone sounds bad).
LOWER_IS_BETTER = (
    "latency",
    "seconds",
    "makespan",
    "overhead",
    "migrations",
    "drops",
    "retries",
    "failures",
    "unreachable",
    "degraded_units",
    "blame_queue",
    "blame_retry",
    "blame_network",
    "drift_ratio",
)
HIGHER_IS_BETTER = (
    "throughput",
    "speedup",
    "qpm",
    "fraction",
    "hit_rate",
    "capacity",
    "n_max",
)
# Metrics excluded from gating entirely: run bookkeeping and exact-shape
# assertions the bench itself already enforces (comparing them with a
# relative tolerance is meaningless).
UNGATED = (
    "spans",
    "decomposition_questions_checked",
    "drift_first_flagged_window",
    "model_error_ratio",
)
# Per-metric tolerance overrides (substring -> relative tolerance): these
# are legitimately noisier than the default band, e.g. share deltas close
# to zero.
TOLERANCE_OVERRIDES = {
    "blame_": 1.0,
    "drift_ratio": 0.5,
    "_delta": 5.0,
    # Wall-clock host measurements (micro benches): only order-of-magnitude
    # regressions are meaningful across machines.
    "micro_": 9.0,
}


def direction(name):
    for needle in UNGATED:
        if needle in name:
            return "ungated"
    for needle in HIGHER_IS_BETTER:
        if needle in name:
            return "higher"
    for needle in LOWER_IS_BETTER:
        if needle in name:
            return "lower"
    return "both"


def tolerance_for(name, default):
    for needle, tol in TOLERANCE_OVERRIDES.items():
        if needle in name:
            return max(tol, default)
    return default


def metric_key(metric):
    labels = metric.get("labels", {})
    return (metric.get("name", ""), tuple(sorted(labels.items())))


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "qadist-bench-v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def key_str(key):
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def check_metric(key, base_mean, fresh_mean, default_tolerance):
    """Returns (failed, message-or-None) for one metric comparison."""
    name = key[0]
    dirn = direction(name)
    if dirn == "ungated":
        return False, None
    tol = tolerance_for(name, default_tolerance)
    # Tiny baselines make relative comparison explode; use an absolute
    # floor so a 0.0001 -> 0.0003 jitter on a near-zero metric passes.
    floor = 1e-3
    scale = max(abs(base_mean), floor)
    delta = fresh_mean - base_mean
    why = {"lower": "lower is better", "higher": "higher is better",
           "both": "gated two-sided"}[dirn]
    if dirn in ("lower", "both") and delta > tol * scale:
        return True, (
            f"{key_str(key)}: {base_mean:.6g} -> {fresh_mean:.6g} "
            f"(+{delta / scale:.1%}, tolerance {tol:.0%}, {why})"
        )
    if dirn in ("higher", "both") and -delta > tol * scale:
        return True, (
            f"{key_str(key)}: {base_mean:.6g} -> {fresh_mean:.6g} "
            f"({delta / scale:.1%}, tolerance {tol:.0%}, {why})"
        )
    return False, None


def compare_report(base_doc, fresh_doc, default_tolerance, verbose):
    """Returns a list of failure messages for one bench report pair."""
    failures = []
    base_metrics = {metric_key(m): m for m in base_doc.get("metrics", [])}
    fresh_metrics = {metric_key(m): m for m in fresh_doc.get("metrics", [])}
    for key, base_m in sorted(base_metrics.items()):
        fresh_m = fresh_metrics.get(key)
        if fresh_m is None:
            failures.append(f"{key_str(key)}: metric vanished from report")
            continue
        failed, msg = check_metric(
            key, base_m.get("mean", 0.0), fresh_m.get("mean", 0.0),
            default_tolerance)
        if failed:
            failures.append(msg)
        elif verbose:
            print(f"    ok {key_str(key)}: {base_m.get('mean', 0.0):.6g} -> "
                  f"{fresh_m.get('mean', 0.0):.6g}")
    extra = sorted(set(fresh_metrics) - set(base_metrics))
    if extra and verbose:
        for key in extra:
            print(f"    new (ungated) {key_str(key)}")
    return failures


def self_test(pairs, default_tolerance):
    """Perturbs one gated metric per report by 2x the failing way; the gate
    must catch every seeded regression."""
    missed = []
    seeded = 0
    for name, base_doc, fresh_doc in pairs:
        perturbed = json.loads(json.dumps(fresh_doc))  # deep copy
        target = None
        for m in perturbed.get("metrics", []):
            dirn = direction(m.get("name", ""))
            if dirn in ("lower", "both") and abs(m.get("mean", 0.0)) > 1e-3:
                target = m
                m["mean"] = m["mean"] * 2.0
                break
            if dirn == "higher" and abs(m.get("mean", 0.0)) > 1e-3:
                target = m
                m["mean"] = m["mean"] * 0.5
                break
        if target is None:
            continue  # nothing gateable in this report
        seeded += 1
        failures = compare_report(base_doc, perturbed, default_tolerance,
                                  verbose=False)
        if not failures:
            missed.append(f"{name}: seeded 2x regression on "
                          f"'{target['name']}' went undetected")
    if seeded == 0:
        print("self-test: no gateable metrics found", file=sys.stderr)
        return 2
    for msg in missed:
        print(f"SELF-TEST MISS: {msg}")
    print(f"self-test: {seeded} seeded regressions, "
          f"{seeded - len(missed)} caught")
    return 1 if missed else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="default relative tolerance (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed 2x regressions and require detection")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    baseline_paths = sorted(glob.glob(
        os.path.join(args.baseline, "BENCH_*.json")))
    if not baseline_paths:
        print(f"no BENCH_*.json baselines in {args.baseline}",
              file=sys.stderr)
        return 2

    pairs = []
    failures = []
    for base_path in baseline_paths:
        name = os.path.basename(base_path)
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh report missing (bench not run "
                            "or crashed before writing)")
            continue
        try:
            base_doc = load_report(base_path)
            fresh_doc = load_report(fresh_path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"error reading reports: {err}", file=sys.stderr)
            return 2
        pairs.append((name, base_doc, fresh_doc))

    if args.self_test:
        return self_test(pairs, args.tolerance)

    for name, base_doc, fresh_doc in pairs:
        if args.verbose:
            print(f"-- {name}")
        report_failures = compare_report(base_doc, fresh_doc, args.tolerance,
                                         args.verbose)
        failures.extend(f"{name}: {msg}" for msg in report_failures)

    compared = len(pairs)
    if failures:
        print(f"REGRESSION GATE FAILED — {len(failures)} finding(s) over "
              f"{compared} report(s):")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"regression gate passed: {compared} report(s) within tolerance "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head etc.
        sys.exit(0)
